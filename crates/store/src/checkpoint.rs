//! Binary engine checkpoints.
//!
//! A checkpoint is a complete image of the engine's durable state at
//! one watermark: for every shard, the full `GraphDb` slot array
//! (including tombstoned and compacted slots — id spaces must survive
//! recovery exactly), every view record with all its versions, each
//! version's materialized subgraph-tier row, and the live-view
//! maintenance registrations; plus the global watermark and the
//! durable op ordinal the WAL continues from. It extends the portable
//! export format (`gvex_core::export::to_portable`) — same
//! two-tier view shape — into a binary, epoch-faithful image.
//!
//! The label and pattern indexes are deliberately **not** stored:
//! both are deterministic functions of the data that is (the slot
//! lifetimes and the view versions' pattern tiers and rows), and
//! recovery rebuilds them through the store's normal construction
//! path. Ad-hoc patterns memoized from queries are dropped; their next
//! probe re-scans and re-memoizes identically.
//!
//! The file is staged in `checkpoint.tmp` and atomically renamed over
//! `checkpoint.bin` after an fsync, so a crash mid-checkpoint leaves
//! the previous complete checkpoint in place. The payload carries a
//! CRC32; a checkpoint that fails its checksum is a hard
//! [`StoreError::Corrupt`] — unlike a WAL tail, there is no safe
//! prefix of a snapshot.

use crate::codec::{crc32, CodecError, Dec, Enc};
use crate::StoreError;
use gvex_graph::{ExtentLoc, Graph};
use gvex_pattern::Pattern;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// File magic (`GVEXCKP2`). Version 2 segmented the payloads out of
/// the checkpoint: slots carry extent locations instead of inline
/// graphs, so recovery opens the image lazily. Version-1 files are
/// refused as corrupt (no deployed v1 directories exist to migrate).
const MAGIC: &[u8; 8] = b"GVEXCKP2";

/// One `GraphDb` slot, exactly as the engine held it: the payload is
/// referenced by its extent location (`None` for compacted slots — the
/// id space keeps the position). Payload bytes live in the per-shard
/// extent files, which are append-only, so every location a checkpoint
/// records stays valid for the lifetime of the directory.
#[derive(Debug, Clone)]
pub struct SlotState {
    /// Extent location of the payload; `None` after compaction
    /// reclaimed it.
    pub loc: Option<ExtentLoc>,
    /// Ground-truth label.
    pub truth: u16,
    /// Classifier prediction, if recorded.
    pub predicted: Option<u16>,
    /// Birth epoch.
    pub born: u64,
    /// Death epoch (`u64::MAX` while live).
    pub died: u64,
}

/// One explanation subgraph of a stored view (mirrors
/// `gvex_core::ExplanationSubgraph`, which this crate cannot name
/// without a dependency cycle).
#[derive(Debug, Clone)]
pub struct StoredSubgraph {
    /// The database graph this subgraph explains.
    pub graph_id: u32,
    /// Selected nodes of that graph.
    pub nodes: Vec<u32>,
    /// Factual-consistency flag (C1).
    pub consistent: bool,
    /// Counterfactual flag (C2).
    pub counterfactual: bool,
    /// Explainability contribution.
    pub score: f64,
}

/// One explanation view's value (mirrors
/// `gvex_core::ExplanationView`).
#[derive(Debug, Clone)]
pub struct StoredView {
    /// The class label the view explains.
    pub label: u16,
    /// Subgraph tier.
    pub subgraphs: Vec<StoredSubgraph>,
    /// Pattern tier.
    pub patterns: Vec<Pattern>,
    /// Explainability objective value.
    pub explainability: f64,
    /// Edge-loss metric.
    pub edge_loss: f64,
}

/// One version of a view record: the view value, its epoch interval,
/// and the materialized induced subgraphs of its row (stored rather
/// than re-induced at recovery, because the backing graphs may have
/// been removed and compacted since the version was built).
#[derive(Debug, Clone)]
pub struct VersionState {
    /// Birth epoch.
    pub born: u64,
    /// Death epoch (`u64::MAX` for the head version).
    pub died: u64,
    /// The view value.
    pub view: StoredView,
    /// The subgraph-tier row, aligned with `view.subgraphs`: the
    /// induced graph of each explanation subgraph.
    pub row: Vec<Graph>,
}

/// All versions of one view, oldest first (the store's record shape).
#[derive(Debug, Clone, Default)]
pub struct ViewRecordState {
    /// Versions, oldest first.
    pub versions: Vec<VersionState>,
}

/// One live-view maintenance registration.
#[derive(Debug, Clone, Copy)]
pub struct LiveState {
    /// The registered label.
    pub label: u16,
    /// Store-local view id.
    pub view: u32,
    /// `Some(fraction)` for `StreamGVEX` registrations, `None` for
    /// `ApproxGVEX`.
    pub stream_fraction: Option<f64>,
    /// Incremental updates since the last full recompute.
    pub staleness: u64,
}

/// One shard's complete durable state.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// The shard index (also the db's id-composition shard).
    pub shard: u32,
    /// The shard db's own epoch at checkpoint time.
    pub db_epoch: u64,
    /// Every allocated slot, in id order.
    pub slots: Vec<SlotState>,
    /// Every view record, in store insertion order.
    pub views: Vec<ViewRecordState>,
    /// Live-view registrations.
    pub live: Vec<LiveState>,
}

/// A complete engine checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointFile {
    /// Global watermark at checkpoint time.
    pub watermark: u64,
    /// Durable op ordinal the WAL continues from: every logged op with
    /// `batch >= op_seq` post-dates this checkpoint.
    pub op_seq: u64,
    /// Per-shard state, ascending shard index.
    pub shards: Vec<ShardState>,
}

fn enc_stored_view(e: &mut Enc, v: &StoredView) {
    e.u16(v.label);
    e.u32(v.subgraphs.len() as u32);
    for s in &v.subgraphs {
        e.u32(s.graph_id);
        e.u32(s.nodes.len() as u32);
        for &n in &s.nodes {
            e.u32(n);
        }
        e.bool(s.consistent);
        e.bool(s.counterfactual);
        e.f64(s.score);
    }
    e.u32(v.patterns.len() as u32);
    for p in &v.patterns {
        e.pattern(p);
    }
    e.f64(v.explainability);
    e.f64(v.edge_loss);
}

fn dec_stored_view(d: &mut Dec<'_>) -> Result<StoredView, CodecError> {
    let label = d.u16()?;
    let ns = d.len(15)?;
    let mut subgraphs = Vec::with_capacity(ns);
    for _ in 0..ns {
        let graph_id = d.u32()?;
        let nn = d.len(4)?;
        let mut nodes = Vec::with_capacity(nn);
        for _ in 0..nn {
            nodes.push(d.u32()?);
        }
        let consistent = d.bool()?;
        let counterfactual = d.bool()?;
        let score = d.f64()?;
        subgraphs.push(StoredSubgraph { graph_id, nodes, consistent, counterfactual, score });
    }
    let np = d.len(8)?;
    let mut patterns = Vec::with_capacity(np);
    for _ in 0..np {
        patterns.push(d.pattern()?);
    }
    Ok(StoredView { label, subgraphs, patterns, explainability: d.f64()?, edge_loss: d.f64()? })
}

fn encode(ck: &CheckpointFile) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(ck.watermark);
    e.u64(ck.op_seq);
    e.u32(ck.shards.len() as u32);
    for sh in &ck.shards {
        e.u32(sh.shard);
        e.u64(sh.db_epoch);
        e.u32(sh.slots.len() as u32);
        for slot in &sh.slots {
            match &slot.loc {
                Some(loc) => {
                    e.bool(true);
                    e.u32(loc.extent);
                    e.u64(loc.offset);
                    e.u32(loc.len);
                }
                None => e.bool(false),
            }
            e.u16(slot.truth);
            e.opt_u16(slot.predicted);
            e.u64(slot.born);
            e.u64(slot.died);
        }
        e.u32(sh.views.len() as u32);
        for rec in &sh.views {
            e.u32(rec.versions.len() as u32);
            for v in &rec.versions {
                e.u64(v.born);
                e.u64(v.died);
                enc_stored_view(&mut e, &v.view);
                e.u32(v.row.len() as u32);
                for g in &v.row {
                    e.graph(g);
                }
            }
        }
        e.u32(sh.live.len() as u32);
        for lv in &sh.live {
            e.u16(lv.label);
            e.u32(lv.view);
            match lv.stream_fraction {
                Some(f) => {
                    e.bool(true);
                    e.f64(f);
                }
                None => e.bool(false),
            }
            e.u64(lv.staleness);
        }
    }
    e.finish()
}

fn decode(payload: &[u8]) -> Result<CheckpointFile, CodecError> {
    let mut d = Dec::new(payload);
    let watermark = d.u64()?;
    let op_seq = d.u64()?;
    let nsh = d.len(20)?;
    let mut shards = Vec::with_capacity(nsh);
    for _ in 0..nsh {
        let shard = d.u32()?;
        let db_epoch = d.u64()?;
        let nslots = d.len(20)?;
        let mut slots = Vec::with_capacity(nslots);
        for _ in 0..nslots {
            let loc = if d.bool()? {
                Some(ExtentLoc { extent: d.u32()?, offset: d.u64()?, len: d.u32()? })
            } else {
                None
            };
            slots.push(SlotState {
                loc,
                truth: d.u16()?,
                predicted: d.opt_u16()?,
                born: d.u64()?,
                died: d.u64()?,
            });
        }
        let nviews = d.len(4)?;
        let mut views = Vec::with_capacity(nviews);
        for _ in 0..nviews {
            let nvers = d.len(16)?;
            let mut versions = Vec::with_capacity(nvers);
            for _ in 0..nvers {
                let born = d.u64()?;
                let died = d.u64()?;
                let view = dec_stored_view(&mut d)?;
                let nrow = d.len(8)?;
                let mut row = Vec::with_capacity(nrow);
                for _ in 0..nrow {
                    row.push(d.graph()?);
                }
                versions.push(VersionState { born, died, view, row });
            }
            views.push(ViewRecordState { versions });
        }
        let nlive = d.len(15)?;
        let mut live = Vec::with_capacity(nlive);
        for _ in 0..nlive {
            let label = d.u16()?;
            let view = d.u32()?;
            let stream_fraction = if d.bool()? { Some(d.f64()?) } else { None };
            live.push(LiveState { label, view, stream_fraction, staleness: d.u64()? });
        }
        shards.push(ShardState { shard, db_epoch, slots, views, live });
    }
    if !d.is_done() {
        return Err(CodecError("trailing bytes after checkpoint".into()));
    }
    Ok(CheckpointFile { watermark, op_seq, shards })
}

/// Writes `ck` atomically into `dir`: stage in the temp file, fsync,
/// rename over `checkpoint.bin`, fsync the directory. Returns the
/// payload size in bytes.
pub fn write_checkpoint(dir: &Path, ck: &CheckpointFile) -> Result<u64, StoreError> {
    let payload = encode(ck);
    let tmp = crate::checkpoint_tmp_path(dir);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(MAGIC)?;
        f.write_all(&crc32(&payload).to_le_bytes())?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(&payload)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, crate::checkpoint_path(dir))?;
    // The bytes are durable but the *rename* lives in the directory's
    // metadata: without syncing the directory a power loss can revert
    // to the old name (or, on a fresh directory, to no checkpoint at
    // all) even though the new file's contents hit disk. On unix a
    // failure here is a real durability error and propagates; on
    // platforms without directory handles it degrades to a no-op.
    crate::fsync_dir(dir)?;
    Ok(payload.len() as u64)
}

/// Reads and validates `dir`'s checkpoint. `Ok(None)` when no
/// checkpoint file exists (a fresh directory).
pub fn read_checkpoint(dir: &Path) -> Result<Option<CheckpointFile>, StoreError> {
    let path = crate::checkpoint_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 20 || &bytes[..8] != MAGIC {
        return Err(StoreError::Corrupt(format!("{} has no checkpoint magic", path.display())));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let payload = bytes.get(20..20 + len).ok_or_else(|| {
        StoreError::Corrupt(format!("{} shorter than header claims", path.display()))
    })?;
    if crc32(payload) != crc {
        return Err(StoreError::Corrupt(format!("{} fails its checksum", path.display())));
    }
    let ck =
        decode(payload).map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
    Ok(Some(ck))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gvex_store_ckpt_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> CheckpointFile {
        let mut g = Graph::new(1);
        g.add_node(0, &[0.5]);
        g.add_node(1, &[1.5]);
        g.add_edge(0, 1, 2);
        let view = StoredView {
            label: 1,
            subgraphs: vec![StoredSubgraph {
                graph_id: 3,
                nodes: vec![0, 1],
                consistent: true,
                counterfactual: false,
                score: 0.75,
            }],
            patterns: vec![Pattern::new(&[0, 1], &[(0, 1, 2)])],
            explainability: 1.5,
            edge_loss: 0.25,
        };
        CheckpointFile {
            watermark: 42,
            op_seq: 7,
            shards: vec![ShardState {
                shard: 0,
                db_epoch: 42,
                slots: vec![
                    SlotState {
                        loc: Some(ExtentLoc { extent: 0, offset: 128, len: 77 }),
                        truth: 1,
                        predicted: Some(1),
                        born: 0,
                        died: u64::MAX,
                    },
                    SlotState { loc: None, truth: 0, predicted: None, born: 1, died: 5 },
                ],
                views: vec![ViewRecordState {
                    versions: vec![VersionState { born: 2, died: u64::MAX, view, row: vec![g] }],
                }],
                live: vec![LiveState {
                    label: 1,
                    view: 0,
                    stream_fraction: Some(0.5),
                    staleness: 3,
                }],
            }],
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let dir = tmp("round_trip");
        write_checkpoint(&dir, &sample()).unwrap();
        let ck = read_checkpoint(&dir).unwrap().expect("checkpoint present");
        assert_eq!(ck.watermark, 42);
        assert_eq!(ck.op_seq, 7);
        assert_eq!(ck.shards.len(), 1);
        let sh = &ck.shards[0];
        assert_eq!(sh.slots.len(), 2);
        assert_eq!(sh.slots[0].loc, Some(ExtentLoc { extent: 0, offset: 128, len: 77 }));
        assert!(sh.slots[1].loc.is_none());
        assert_eq!(sh.slots[1].died, 5);
        let v = &sh.views[0].versions[0];
        assert_eq!(v.view.label, 1);
        assert_eq!(v.view.subgraphs[0].nodes, vec![0, 1]);
        assert_eq!(v.view.patterns[0].num_nodes(), 2);
        assert_eq!(v.row.len(), 1);
        assert_eq!(sh.live[0].stream_fraction, Some(0.5));
    }

    #[test]
    fn missing_checkpoint_reads_as_none() {
        let dir = tmp("missing");
        assert!(read_checkpoint(&dir).unwrap().is_none());
    }

    #[test]
    fn corrupt_checkpoint_is_a_hard_error() {
        let dir = tmp("corrupt");
        write_checkpoint(&dir, &sample()).unwrap();
        let path = crate::checkpoint_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_checkpoint(&dir), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmp("rewrite");
        write_checkpoint(&dir, &sample()).unwrap();
        let mut ck = sample();
        ck.watermark = 99;
        write_checkpoint(&dir, &ck).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap().unwrap().watermark, 99);
        assert!(!crate::checkpoint_tmp_path(&dir).exists());
    }
}
