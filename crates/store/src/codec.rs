//! The little-endian binary codec shared by the WAL and checkpoint
//! formats, plus the CRC32 (IEEE) checksum both use for frame
//! integrity.
//!
//! The build environment resolves `serde` to a JSON-only shim, so the
//! durability formats are encoded by hand: fixed-width little-endian
//! integers, `f64` as its IEEE-754 bit pattern, and `u32`
//! length-prefixed sequences. Decoding is bounds-checked everywhere —
//! a truncated or bit-flipped buffer yields [`CodecError`], never a
//! panic or an out-of-bounds read.

use gvex_graph::Graph;
use gvex_pattern::Pattern;

/// Decode failure: the buffer is shorter than the encoding claims or a
/// tag/count is out of its domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3 polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends an optional `u16` (presence byte + value).
    pub fn opt_u16(&mut self, v: Option<u16>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u16(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends a [`Graph`]: node types + features, then each undirected
    /// edge once.
    pub fn graph(&mut self, g: &Graph) {
        self.u32(g.num_nodes() as u32);
        self.u32(g.feature_dim() as u32);
        for v in 0..g.num_nodes() as u32 {
            self.u16(g.node_type(v));
            for &x in g.features().row(v as usize) {
                self.f64(x);
            }
        }
        let edges: Vec<_> = g.edges().collect();
        self.u32(edges.len() as u32);
        for (u, v, t) in edges {
            self.u32(u);
            self.u32(v);
            self.u16(t);
        }
    }

    /// Appends a [`Pattern`] (node types + edges).
    pub fn pattern(&mut self, p: &Pattern) {
        self.u32(p.num_nodes() as u32);
        for v in 0..p.num_nodes() as u32 {
            self.u16(p.node_type(v));
        }
        let edges: Vec<_> = p.edges().collect();
        self.u32(edges.len() as u32);
        for (u, v, t) in edges {
            self.u32(u);
            self.u32(v);
            self.u16(t);
        }
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| CodecError(format!("buffer underrun at byte {}", self.pos)))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (rejecting bytes other than 0/1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2-byte slice")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional `u16`.
    pub fn opt_u16(&mut self) -> Result<Option<u16>, CodecError> {
        Ok(if self.bool()? { Some(self.u16()?) } else { None })
    }

    /// Reads a sequence length, capped against the bytes actually
    /// remaining (each element needs at least `min_elem_bytes`), so a
    /// corrupt length cannot drive an allocation far past the buffer.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(CodecError(format!(
                "sequence length {n} exceeds remaining {remaining} bytes"
            )));
        }
        Ok(n)
    }

    /// Reads a [`Graph`] written by [`Enc::graph`].
    pub fn graph(&mut self) -> Result<Graph, CodecError> {
        let n = self.u32()? as usize;
        let dim = self.u32()? as usize;
        // Each node carries a u16 type plus `dim` f64 features.
        let per_node = 2 + 8 * dim;
        if n.saturating_mul(per_node) > self.buf.len() - self.pos {
            return Err(CodecError(format!("graph claims {n} nodes past end of buffer")));
        }
        let mut g = Graph::new(dim);
        let mut feats = vec![0.0f64; dim];
        for _ in 0..n {
            let ty = self.u16()?;
            for f in feats.iter_mut() {
                *f = self.f64()?;
            }
            g.add_node(ty, &feats);
        }
        let m = self.len(10)?;
        for _ in 0..m {
            let u = self.u32()?;
            let v = self.u32()?;
            let t = self.u16()?;
            if u as usize >= n || v as usize >= n {
                return Err(CodecError(format!("edge ({u}, {v}) names a node outside 0..{n}")));
            }
            g.add_edge(u, v, t);
        }
        Ok(g)
    }

    /// Reads a [`Pattern`] written by [`Enc::pattern`].
    pub fn pattern(&mut self) -> Result<Pattern, CodecError> {
        let n = self.len(2)?;
        let mut types = Vec::with_capacity(n);
        for _ in 0..n {
            types.push(self.u16()?);
        }
        let m = self.len(10)?;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let u = self.u32()?;
            let v = self.u32()?;
            let t = self.u16()?;
            if u as usize >= n || v as usize >= n {
                return Err(CodecError(format!("pattern edge ({u}, {v}) outside 0..{n}")));
            }
            edges.push((u, v, t));
        }
        Ok(Pattern::new(&types, &edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u16(65_000);
        e.u32(4_000_000_000);
        e.u64(u64::MAX - 1);
        e.f64(-1.25e300);
        e.opt_u16(None);
        e.opt_u16(Some(42));
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 65_000);
        assert_eq!(d.u32().unwrap(), 4_000_000_000);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.f64().unwrap(), -1.25e300);
        assert_eq!(d.opt_u16().unwrap(), None);
        assert_eq!(d.opt_u16().unwrap(), Some(42));
        assert!(d.is_done());
    }

    #[test]
    fn graph_round_trip() {
        let mut g = Graph::new(2);
        g.add_node(3, &[0.5, -1.0]);
        g.add_node(4, &[1.5, 2.0]);
        g.add_node(3, &[0.0, 0.25]);
        g.add_edge(0, 1, 9);
        g.add_edge(1, 2, 8);
        let mut e = Enc::new();
        e.graph(&g);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        let h = d.graph().unwrap();
        assert!(d.is_done());
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.feature_dim(), 2);
        for v in 0..3u32 {
            assert_eq!(h.node_type(v), g.node_type(v));
            assert_eq!(h.features().row(v as usize), g.features().row(v as usize));
        }
        assert_eq!(h.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn pattern_round_trip() {
        let p = Pattern::new(&[1, 2, 2], &[(0, 1, 0), (1, 2, 5)]);
        let mut e = Enc::new();
        e.pattern(&p);
        let bytes = e.finish();
        let q = Dec::new(&bytes).pattern().unwrap();
        assert_eq!(q.num_nodes(), 3);
        assert_eq!(q.canon_key(), p.canon_key());
        assert_eq!(q.edges().collect::<Vec<_>>(), p.edges().collect::<Vec<_>>());
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking() {
        let mut e = Enc::new();
        let mut g = Graph::new(1);
        g.add_node(0, &[1.0]);
        e.graph(&g);
        let bytes = e.finish();
        for cut in 0..bytes.len() {
            assert!(Dec::new(&bytes[..cut]).graph().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        // A graph header claiming u32::MAX nodes over a tiny buffer.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        e.u32(4);
        let bytes = e.finish();
        assert!(Dec::new(&bytes).graph().is_err());
    }
}
