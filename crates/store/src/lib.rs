//! Durable storage for the GVEX engine: per-shard write-ahead logs and
//! binary checkpoints of the full engine state.
//!
//! The engine (in `gvex_core`) stays purely in-memory by default; this
//! crate is the storage layer behind `EngineBuilder::durable(path)`:
//!
//! - [`wal`]: one append-only log per shard. Every record is
//!   length-prefixed and CRC32-checksummed, so recovery truncates the
//!   tail at the first torn or corrupt frame instead of propagating
//!   garbage. Records carry the global op ordinal (`batch`), the commit
//!   epoch, and the full participant shard set of the op, which is what
//!   makes cross-shard batches recover whole-or-not-at-all.
//! - [`checkpoint`]: a binary snapshot of every shard's `GraphDb`
//!   slots, `ViewStore` records (views, versions, and their
//!   subgraph-tier rows — the inputs from which the pattern and label
//!   indexes are rebuilt deterministically), and live-view maintenance
//!   registrations, plus the global watermark and op ordinal. Written
//!   via a temp file + atomic rename, so a checkpoint is either the old
//!   complete file or the new complete file, never a torn mix.
//! - [`codec`]: the hand-rolled little-endian binary encoding shared by
//!   both, including the [`Graph`](gvex_graph::Graph) and
//!   [`Pattern`](gvex_pattern::Pattern) codecs and the CRC32
//!   implementation.
//!
//! Recovery itself (replaying a directory back into an engine) lives in
//! `gvex_core::engine`, which owns the types being reconstructed; this
//! crate only defines the on-disk formats and their readers/writers.

pub mod checkpoint;
pub mod codec;
pub mod wal;

pub use checkpoint::{
    read_checkpoint, write_checkpoint, CheckpointFile, LiveState, ShardState, SlotState,
    StoredSubgraph, StoredView, VersionState, ViewRecordState,
};
pub use wal::{
    read_wal, truncate_wal, FsyncPolicy, InsertEntry, RemoveEntry, WalOp, WalRecord, WalSegment,
    WalWriter,
};

use std::fmt;
use std::path::{Path, PathBuf};

/// Errors of the durability layer: an I/O failure of the underlying
/// files, or state that fails validation (bad magic, checksum, or a
/// replay that contradicts the log).
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The on-disk state is not a valid engine image (and was not a
    /// recoverable torn tail).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "durable store i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "durable store corrupt: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Path of the checkpoint file inside a durable directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.bin")
}

/// Path of the temp file a checkpoint is staged in before the atomic
/// rename.
pub fn checkpoint_tmp_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.tmp")
}

/// Path of shard `s`'s write-ahead log inside a durable directory.
pub fn wal_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("wal-{s:03}.log"))
}

/// Path of shard `s`'s generation-0 payload extent (the append-only
/// segment file the pager spills evicted graph payloads into and
/// checkpoints point at) inside a durable directory. Later generations
/// — opened when a windowed engine rotates a mostly-dead extent — live
/// at [`extent_gen_path`].
pub fn extent_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("pages-{s:03}.seg"))
}

/// Path of shard `s`'s generation-`g` payload extent. Generation 0 is
/// the bare [`extent_path`] name, so directories written before extent
/// generations existed read back unchanged.
pub fn extent_gen_path(dir: &Path, s: usize, g: u32) -> PathBuf {
    if g == 0 {
        extent_path(dir, s)
    } else {
        dir.join(format!("pages-{s:03}-g{g}.seg"))
    }
}

/// Fsyncs `dir` itself, persisting directory-level metadata (file
/// creations and renames inside it). On platforms where directories
/// cannot be opened or synced this degrades to a best-effort no-op —
/// on unix, where the rename-durability guarantee matters and works,
/// failures are real errors and propagate.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    match std::fs::File::open(dir) {
        Ok(d) => {
            let r = d.sync_all();
            if cfg!(unix) {
                r
            } else {
                Ok(())
            }
        }
        Err(e) => {
            if cfg!(unix) {
                Err(e)
            } else {
                Ok(())
            }
        }
    }
}
