//! The per-shard write-ahead log.
//!
//! # Frame format
//!
//! Each record is framed as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! and appended strictly at the tail. The reader accepts the longest
//! prefix of valid frames and reports where it stopped: a torn write
//! (short frame, or a payload whose checksum or decoding fails) ends
//! the log there, so recovery truncates the tail instead of failing —
//! the WAL invariant that a crash can only ever damage the bytes that
//! were in flight.
//!
//! # Record contents
//!
//! A [`WalRecord`] is one engine op's contribution to one shard:
//! `batch` is the op's global ordinal (the engine's durable op
//! sequence), `epoch` its commit epoch, and `participants` the full
//! set of shards the op logged to. A multi-shard op (a batch insert
//! spanning shards) appends one record *per participant shard*, all
//! carrying the same `batch` and `participants`; recovery replays a
//! batch only when every participant's record is present, which is how
//! cross-shard batches stay whole-or-not-at-all across a crash.
//!
//! # Fault injection (test only)
//!
//! When the `GVEX_WAL_CRASH_AFTER_BYTES` environment variable is set,
//! the process aborts mid-append once the process-wide count of WAL
//! bytes written crosses the given value, leaving a deliberately torn
//! frame on disk. The crash-matrix harness uses this to exercise the
//! mid-append recovery path deterministically.

use crate::codec::{crc32, CodecError, Dec, Enc};
use crate::StoreError;
use gvex_graph::Graph;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// When to `fsync` the log after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record: an acknowledged op is always on disk.
    Always,
    /// Group commit: sync every [`FsyncPolicy::GROUP`] records (and on
    /// checkpoint / drop). A crash can lose the most recent unsynced
    /// group, but never tears what it keeps.
    Batch,
    /// Never sync explicitly; the OS flushes at its leisure. Fastest,
    /// weakest.
    Never,
}

impl FsyncPolicy {
    /// Records per group commit under [`FsyncPolicy::Batch`].
    pub const GROUP: usize = 32;
}

/// One graph of a logged insert batch: `pos` is its index within the
/// original batch (so recovery reassembles cross-shard batches in
/// submission order), `id` the GraphId the commit allocated (verified
/// on replay), `truth` the caller-supplied ground-truth label.
#[derive(Debug, Clone)]
pub struct InsertEntry {
    /// Index within the submitted batch.
    pub pos: u32,
    /// The id the original commit allocated — replay must reproduce it.
    pub id: u32,
    /// Ground-truth label as submitted (`None` = use the prediction).
    pub truth: Option<u16>,
    /// The graph payload.
    pub graph: Graph,
}

/// One id of a logged removal batch (`pos` as in [`InsertEntry`]; ids
/// that turn out stale are logged anyway so replay reproduces the
/// original epoch accounting, and skip identically).
#[derive(Debug, Clone, Copy)]
pub struct RemoveEntry {
    /// Index within the submitted id list.
    pub pos: u32,
    /// The submitted id (possibly stale — replay skips it the same way).
    pub id: u32,
}

/// The op a WAL record logs (this shard's slice of it).
#[derive(Debug, Clone)]
pub enum WalOp {
    /// `insert_graphs`: the entries routed to this shard.
    Insert(Vec<InsertEntry>),
    /// `remove_graphs`: the ids routed to this shard.
    Remove(Vec<RemoveEntry>),
    /// `explain_all` (always logged to shard 0; recomputed on replay).
    ExplainAll,
    /// `explain_label(label)`.
    ExplainLabel(u16),
    /// `stream(label, fraction)`.
    Stream {
        /// The label explained.
        label: u16,
        /// Stream-prefix fraction.
        fraction: f64,
    },
    /// `explain_subset(label, ids)`.
    ExplainSubset {
        /// The label explained.
        label: u16,
        /// The subset as submitted.
        ids: Vec<u32>,
    },
    /// `stream_subset(label, ids, fraction)`.
    StreamSubset {
        /// The label explained.
        label: u16,
        /// The subset as submitted.
        ids: Vec<u32>,
        /// Stream-prefix fraction.
        fraction: f64,
    },
}

/// One framed record of a shard's log. See the module docs for the
/// cross-shard batch semantics of `batch` / `participants`.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Global op ordinal (the engine's durable op sequence).
    pub batch: u64,
    /// The epoch the op committed at.
    pub epoch: u64,
    /// Every shard this op appended a record to (ascending).
    pub participants: Vec<u32>,
    /// This shard's slice of the op.
    pub op: WalOp,
}

impl WalRecord {
    /// Encodes the record payload (the bytes the frame checksums).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.batch);
        e.u64(self.epoch);
        e.u32(self.participants.len() as u32);
        for &p in &self.participants {
            e.u32(p);
        }
        match &self.op {
            WalOp::Insert(entries) => {
                e.u8(0);
                e.u32(entries.len() as u32);
                for ent in entries {
                    e.u32(ent.pos);
                    e.u32(ent.id);
                    e.opt_u16(ent.truth);
                    e.graph(&ent.graph);
                }
            }
            WalOp::Remove(entries) => {
                e.u8(1);
                e.u32(entries.len() as u32);
                for ent in entries {
                    e.u32(ent.pos);
                    e.u32(ent.id);
                }
            }
            WalOp::ExplainAll => e.u8(2),
            WalOp::ExplainLabel(l) => {
                e.u8(3);
                e.u16(*l);
            }
            WalOp::Stream { label, fraction } => {
                e.u8(4);
                e.u16(*label);
                e.f64(*fraction);
            }
            WalOp::ExplainSubset { label, ids } => {
                e.u8(5);
                e.u16(*label);
                e.u32(ids.len() as u32);
                for &id in ids {
                    e.u32(id);
                }
            }
            WalOp::StreamSubset { label, ids, fraction } => {
                e.u8(6);
                e.u16(*label);
                e.u32(ids.len() as u32);
                for &id in ids {
                    e.u32(id);
                }
                e.f64(*fraction);
            }
        }
        e.finish()
    }

    /// Decodes a record payload.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, CodecError> {
        let mut d = Dec::new(payload);
        let batch = d.u64()?;
        let epoch = d.u64()?;
        let np = d.len(4)?;
        let mut participants = Vec::with_capacity(np);
        for _ in 0..np {
            participants.push(d.u32()?);
        }
        let op = match d.u8()? {
            0 => {
                let n = d.len(9)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let pos = d.u32()?;
                    let id = d.u32()?;
                    let truth = d.opt_u16()?;
                    let graph = d.graph()?;
                    entries.push(InsertEntry { pos, id, truth, graph });
                }
                WalOp::Insert(entries)
            }
            1 => {
                let n = d.len(8)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(RemoveEntry { pos: d.u32()?, id: d.u32()? });
                }
                WalOp::Remove(entries)
            }
            2 => WalOp::ExplainAll,
            3 => WalOp::ExplainLabel(d.u16()?),
            4 => WalOp::Stream { label: d.u16()?, fraction: d.f64()? },
            5 => {
                let label = d.u16()?;
                let n = d.len(4)?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(d.u32()?);
                }
                WalOp::ExplainSubset { label, ids }
            }
            6 => {
                let label = d.u16()?;
                let n = d.len(4)?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(d.u32()?);
                }
                WalOp::StreamSubset { label, ids, fraction: d.f64()? }
            }
            t => return Err(CodecError(format!("unknown wal op tag {t}"))),
        };
        if !d.is_done() {
            return Err(CodecError("trailing bytes after wal record".into()));
        }
        Ok(WalRecord { batch, epoch, participants, op })
    }
}

/// Total WAL bytes this process has written (all writers), driving the
/// test-only crash fault below.
static WAL_BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Parsed value of `GVEX_WAL_CRASH_AFTER_BYTES`, read once.
fn crash_after_bytes() -> Option<u64> {
    static LIMIT: OnceLock<Option<u64>> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        std::env::var("GVEX_WAL_CRASH_AFTER_BYTES").ok().and_then(|v| v.parse().ok())
    })
}

/// Appending writer over one shard's log file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    /// Bytes in the file (all of them valid frames — recovery truncates
    /// before reopening).
    pos: u64,
    policy: FsyncPolicy,
    /// Appends since the last sync (group commit counter).
    pending: usize,
}

impl WalWriter {
    /// Opens (creating if absent) the log for appending. The caller is
    /// responsible for having truncated any torn tail first — the
    /// writer trusts the current file length.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<WalWriter, StoreError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let pos = file.metadata()?.len();
        Ok(WalWriter { file, pos, policy, pending: 0 })
    }

    /// Bytes currently in the log.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Frames, checksums, and appends one record, then applies the
    /// fsync policy. Returns the record's starting offset.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, StoreError> {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.maybe_crash(&frame);
        let at = self.pos;
        self.file.write_all(&frame)?;
        WAL_BYTES_WRITTEN.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.pos += frame.len() as u64;
        self.pending += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch if self.pending >= FsyncPolicy::GROUP => self.sync()?,
            _ => {}
        }
        Ok(at)
    }

    /// Flushes pending appends to disk.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.pending > 0 {
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }

    /// Discards every record (after a checkpoint made them redundant).
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.pos = 0;
        self.pending = 0;
        Ok(())
    }

    /// Test-only crash fault: once the process-wide WAL byte count
    /// would cross `GVEX_WAL_CRASH_AFTER_BYTES`, write exactly the
    /// bytes up to the limit — a torn frame — and abort the process.
    fn maybe_crash(&mut self, frame: &[u8]) {
        let Some(limit) = crash_after_bytes() else { return };
        let written = WAL_BYTES_WRITTEN.load(Ordering::Relaxed);
        if written + frame.len() as u64 > limit {
            let keep = (limit.saturating_sub(written)) as usize;
            let _ = self.file.write_all(&frame[..keep.min(frame.len())]);
            let _ = self.file.sync_data();
            std::process::abort();
        }
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort group-commit flush; a crash here is the same as a
        // crash just before drop, which recovery already tolerates.
        let _ = self.sync();
    }
}

/// One decoded record plus its starting byte offset in the log.
#[derive(Debug, Clone)]
pub struct WalSegment {
    /// Byte offset of the record's frame.
    pub offset: u64,
    /// The decoded record.
    pub record: WalRecord,
}

/// Reads the longest valid prefix of a log. Returns the decoded
/// records, the byte length of that valid prefix, and the file's total
/// length (`valid_len < file_len` means a torn tail to truncate). A
/// missing file reads as empty.
pub fn read_wal(path: &Path) -> Result<(Vec<WalSegment>, u64, u64), StoreError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0, 0)),
        Err(e) => return Err(e.into()),
    }
    let file_len = bytes.len() as u64;
    let mut segments = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let Some(end) = at.checked_add(8).and_then(|s| s.checked_add(len)) else { break };
        if end > bytes.len() {
            break; // torn: frame extends past the file
        }
        let payload = &bytes[at + 8..end];
        if crc32(payload) != crc {
            break; // torn or bit-flipped payload
        }
        let Ok(record) = WalRecord::decode(payload) else { break };
        segments.push(WalSegment { offset: at as u64, record });
        at = end;
    }
    Ok((segments, at as u64, file_len))
}

/// Truncates a log to `len` bytes (dropping a torn or discarded tail).
pub fn truncate_wal(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_data()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gvex_store_wal_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal-000.log")
    }

    fn sample(batch: u64) -> WalRecord {
        let mut g = Graph::new(1);
        g.add_node(1, &[0.5]);
        g.add_node(2, &[1.5]);
        g.add_edge(0, 1, 0);
        WalRecord {
            batch,
            epoch: 10 + batch,
            participants: vec![0],
            op: WalOp::Insert(vec![InsertEntry { pos: 0, id: 7, truth: Some(1), graph: g }]),
        }
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = tmp("round_trip");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        for b in 0..5 {
            w.append(&sample(b)).unwrap();
        }
        drop(w);
        let (segs, valid, total) = read_wal(&path).unwrap();
        assert_eq!(valid, total);
        assert_eq!(segs.len(), 5);
        for (b, s) in segs.iter().enumerate() {
            assert_eq!(s.record.batch, b as u64);
            assert_eq!(s.record.epoch, 10 + b as u64);
            match &s.record.op {
                WalOp::Insert(entries) => {
                    assert_eq!(entries.len(), 1);
                    assert_eq!(entries[0].id, 7);
                    assert_eq!(entries[0].graph.num_nodes(), 2);
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn torn_tail_is_cut_at_every_byte_boundary() {
        let path = tmp("torn");
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(&sample(0)).unwrap();
        let keep = w.append(&sample(1)).unwrap(); // offset of record 1
        w.sync().unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Cut the file anywhere inside record 1's frame: exactly record
        // 0 must survive.
        for cut in keep as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (segs, valid, total) = read_wal(&path).unwrap();
            assert_eq!(segs.len(), 1, "cut at {cut}");
            assert_eq!(valid, keep);
            assert_eq!(total, cut as u64);
        }
    }

    #[test]
    fn corrupt_payload_ends_the_prefix() {
        let path = tmp("bitflip");
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(&sample(0)).unwrap();
        let second = w.append(&sample(1)).unwrap();
        w.append(&sample(2)).unwrap();
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of record 1: records 1 and 2 are gone
        // (2 is unreachable past the bad frame), record 0 survives.
        bytes[second as usize + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (segs, valid, _) = read_wal(&path).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(valid, second);
    }

    #[test]
    fn truncate_then_reopen_appends_cleanly() {
        let path = tmp("reopen");
        let mut w = WalWriter::open(&path, FsyncPolicy::Batch).unwrap();
        w.append(&sample(0)).unwrap();
        let cut = w.append(&sample(1)).unwrap();
        w.sync().unwrap();
        drop(w);
        truncate_wal(&path, cut).unwrap();
        let mut w = WalWriter::open(&path, FsyncPolicy::Batch).unwrap();
        assert_eq!(w.position(), cut);
        w.append(&sample(5)).unwrap();
        w.sync().unwrap();
        drop(w);
        let (segs, _, _) = read_wal(&path).unwrap();
        assert_eq!(segs.iter().map(|s| s.record.batch).collect::<Vec<_>>(), vec![0, 5]);
    }
}
