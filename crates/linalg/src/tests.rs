use crate::{cmp_cost, cmp_score, cross_entropy, softmax_rows, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;

#[test]
fn zeros_shape_and_content() {
    let m = Matrix::zeros(3, 4);
    assert_eq!(m.shape(), (3, 4));
    assert!(m.data().iter().all(|&x| x == 0.0));
}

#[test]
fn identity_matmul_is_noop() {
    let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    let i = Matrix::identity(2);
    assert_eq!(a.matmul(&i), a);
    assert_eq!(i.matmul(&a), a);
}

#[test]
fn matmul_known_product() {
    let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
    let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
    let c = a.matmul(&b);
    assert_eq!(c, Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]]));
}

#[test]
#[should_panic(expected = "matmul shape mismatch")]
fn matmul_shape_mismatch_panics() {
    let a = Matrix::zeros(2, 3);
    let b = Matrix::zeros(2, 3);
    let _ = a.matmul(&b);
}

#[test]
fn transpose_involution() {
    let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
    assert_eq!(a.transpose().transpose(), a);
    assert_eq!(a.transpose().get(2, 1), 6.0);
}

#[test]
fn add_sub_roundtrip() {
    let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
    let b = Matrix::from_rows(&[vec![4.0, 1.0], vec![-1.0, 2.0]]);
    assert_eq!(a.add(&b).sub(&b), a);
}

#[test]
fn hadamard_elementwise() {
    let a = Matrix::from_rows(&[vec![2.0, 3.0]]);
    let b = Matrix::from_rows(&[vec![5.0, -1.0]]);
    assert_eq!(a.hadamard(&b), Matrix::from_rows(&[vec![10.0, -3.0]]));
}

#[test]
fn relu_and_gate() {
    let a = Matrix::from_rows(&[vec![-1.0, 0.0, 2.0]]);
    assert_eq!(a.relu(), Matrix::from_rows(&[vec![0.0, 0.0, 2.0]]));
    assert_eq!(a.relu_gate(), Matrix::from_rows(&[vec![0.0, 0.0, 1.0]]));
}

#[test]
fn max_pool_values_and_argmax() {
    let a = Matrix::from_rows(&[vec![1.0, 5.0], vec![3.0, 2.0], vec![2.0, 4.0]]);
    let (pooled, arg) = a.max_pool_rows();
    assert_eq!(pooled, Matrix::from_rows(&[vec![3.0, 5.0]]));
    assert_eq!(arg, vec![1, 0]);
}

#[test]
fn mean_pool_rows_average() {
    let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    assert_eq!(a.mean_pool_rows(), Matrix::from_rows(&[vec![2.0, 3.0]]));
}

#[test]
fn l1_and_frobenius_norms() {
    let a = Matrix::from_rows(&[vec![3.0, -4.0]]);
    assert_eq!(a.l1_norm(), 7.0);
    assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
}

#[test]
fn gather_rows_selects() {
    let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
    let g = a.gather_rows(&[2, 0]);
    assert_eq!(g, Matrix::from_rows(&[vec![3.0], vec![1.0]]));
}

#[test]
fn row_distance_sq_matches_manual() {
    let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
    assert_eq!(a.row_distance_sq(0, &a, 1), 25.0);
}

#[test]
fn softmax_rows_sum_to_one() {
    let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
    let s = softmax_rows(&a);
    for r in 0..2 {
        let sum: f64 = s.row(r).iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(s.row(r).iter().all(|&p| p > 0.0));
    }
    // Larger logits get larger probabilities.
    assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
}

#[test]
fn softmax_is_shift_invariant() {
    let a = Matrix::from_rows(&[vec![100.0, 101.0]]);
    let b = Matrix::from_rows(&[vec![0.0, 1.0]]);
    let sa = softmax_rows(&a);
    let sb = softmax_rows(&b);
    assert!((sa.get(0, 0) - sb.get(0, 0)).abs() < 1e-12);
}

#[test]
fn cross_entropy_gradient_is_p_minus_onehot() {
    let logits = Matrix::from_rows(&[vec![0.2, 0.8, -0.1]]);
    let (loss, grad) = cross_entropy(&logits, 1);
    let p = softmax_rows(&logits);
    assert!(loss > 0.0);
    assert!((grad.get(0, 1) - (p.get(0, 1) - 1.0)).abs() < 1e-12);
    assert!((grad.get(0, 0) - p.get(0, 0)).abs() < 1e-12);
    // Gradient rows sum to zero.
    let sum: f64 = grad.row(0).iter().sum();
    assert!(sum.abs() < 1e-12);
}

#[test]
fn cross_entropy_numeric_gradient_check() {
    let logits = Matrix::from_rows(&[vec![0.3, -0.7, 1.2, 0.05]]);
    let (_, grad) = cross_entropy(&logits, 2);
    let eps = 1e-6;
    for c in 0..4 {
        let mut plus = logits.clone();
        plus.add_at(0, c, eps);
        let mut minus = logits.clone();
        minus.add_at(0, c, -eps);
        let num = (cross_entropy(&plus, 2).0 - cross_entropy(&minus, 2).0) / (2.0 * eps);
        assert!((num - grad.get(0, c)).abs() < 1e-6, "col {c}: {num} vs {}", grad.get(0, c));
    }
}

#[test]
fn glorot_within_limit() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let m = Matrix::glorot(10, 20, &mut rng);
    let limit = (6.0 / 30.0_f64).sqrt();
    assert!(m.data().iter().all(|&x| x.abs() <= limit));
}

#[test]
fn nan_loses_every_ranking() {
    // Descending sort over scores: NaN comes last — after -inf — never
    // first (plain total_cmp would rank positive NaN above +inf).
    let mut scores = [f64::NAN, 1.0, f64::INFINITY, -3.0, f64::NEG_INFINITY];
    scores.sort_by(|a, b| cmp_score(*b, *a));
    assert_eq!(scores[0], f64::INFINITY);
    assert!(scores[scores.len() - 1].is_nan() || scores[scores.len() - 2].is_nan());
    // Minimization over costs: NaN never wins, with either sign bit
    // (NaN produced by `x - x` is negative on common hardware).
    let neg_nan = -f64::NAN;
    let cheapest = [3.0, neg_nan, 0.5, f64::NAN].into_iter().min_by(|a, b| cmp_cost(*a, *b));
    assert_eq!(cheapest, Some(0.5));
    // All-finite rankings are unaffected.
    let best = [0.2, 0.9, 0.5].into_iter().max_by(|a, b| cmp_score(*a, *b));
    assert_eq!(best, Some(0.9));
}

proptest! {
    #[test]
    fn matmul_distributes_over_add(seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::glorot(3, 4, &mut rng);
        let b = Matrix::glorot(4, 2, &mut rng);
        let c = Matrix::glorot(4, 2, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_of_product_is_reversed_product(seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::glorot(3, 5, &mut rng);
        let b = Matrix::glorot(5, 2, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn scale_is_linear(seed in 0u64..1000, s in -3.0f64..3.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::glorot(4, 4, &mut rng);
        let lhs = a.scale(s).l1_norm();
        let rhs = a.l1_norm() * s.abs();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }
}

// --- CsrMatrix ---

mod csr {
    use super::*;
    use crate::CsrMatrix;
    use rand::Rng;

    #[test]
    fn from_triplets_sums_duplicates_and_sorts() {
        let m =
            CsrMatrix::from_triplets(3, 3, &[(2, 0, 5.0), (0, 2, 1.0), (0, 1, 2.0), (0, 2, 3.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 2), 4.0, "duplicates summed");
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(1, 1), 0.0, "missing entries read as zero");
        let (cols, _) = m.row(0);
        assert_eq!(cols, &[1, 2], "columns ascending within row");
    }

    #[test]
    fn identity_roundtrip_and_spmv() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.to_dense(), Matrix::identity(4));
        assert_eq!(i.spmv(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dense_roundtrip_drops_zeros() {
        let d = Matrix::from_rows(&[vec![0.0, 1.5], vec![2.0, 0.0]]);
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn transpose_known_and_involution() {
        let d = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]);
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.transpose().to_dense(), d.transpose());
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn with_values_keeps_structure() {
        let s = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0)]);
        let t = s.with_values(vec![10.0, 20.0]);
        assert_eq!(t.get(0, 0), 10.0);
        assert_eq!(t.get(1, 0), 20.0);
        assert_eq!(t.indptr(), s.indptr());
        assert_eq!(t.indices(), s.indices());
    }

    #[test]
    #[should_panic(expected = "values length must equal nnz")]
    fn with_values_wrong_length_panics() {
        let s = CsrMatrix::identity(2);
        let _ = s.with_values(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn spmm_shape_mismatch_panics() {
        let s = CsrMatrix::identity(2);
        let _ = s.spmm_dense(&Matrix::zeros(3, 2));
    }

    #[test]
    fn empty_rows_and_zero_sized() {
        let s = CsrMatrix::from_triplets(3, 2, &[]);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.spmm_dense(&Matrix::filled(2, 5, 1.0)), Matrix::zeros(3, 5));
        let e = CsrMatrix::from_triplets(0, 0, &[]);
        assert_eq!(e.to_dense().shape(), (0, 0));
    }

    /// A random sparse matrix as (dense, csr) pair with matching content.
    fn random_pair(rows: usize, cols: usize, seed: u64) -> (Matrix, CsrMatrix) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut d = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(0.3) {
                    d.set(r, c, rng.gen_range(-2.0..2.0));
                }
            }
        }
        let s = CsrMatrix::from_dense(&d);
        (d, s)
    }

    proptest! {
        #[test]
        fn spmm_matches_dense_matmul(seed in 0u64..200) {
            let (d, s) = random_pair(7, 5, seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcd);
            let x = Matrix::glorot(5, 3, &mut rng);
            let sparse = s.spmm_dense(&x);
            let dense = d.matmul(&x);
            for (a, b) in sparse.data().iter().zip(dense.data()) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }

        #[test]
        fn spmv_matches_spmm_column(seed in 0u64..200) {
            let (_, s) = random_pair(6, 4, seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1234);
            let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let xm = Matrix::from_vec(4, 1, x.clone());
            let via_spmm = s.spmm_dense(&xm);
            let via_spmv = s.spmv(&x);
            for (a, b) in via_spmv.iter().zip(via_spmm.data()) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }

        #[test]
        fn transpose_matches_dense(seed in 0u64..200) {
            let (d, s) = random_pair(5, 8, seed);
            prop_assert_eq!(s.transpose().to_dense(), d.transpose());
        }
    }

    /// Exercises the parallel row-chunked spmm path (work above the
    /// serial threshold) against the serial dense reference.
    #[test]
    fn large_spmm_parallel_matches_dense() {
        let (d, s) = random_pair(300, 300, 99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = Matrix::glorot(300, 16, &mut rng);
        assert!(s.nnz() * 16 >= 1 << 15, "must cross the parallel threshold");
        let sparse = s.spmm_dense(&x);
        let dense = d.matmul(&x);
        for (a, b) in sparse.data().iter().zip(dense.data()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
