//! Minimal dense linear algebra for GVEX.
//!
//! The GVEX reproduction deliberately avoids external BLAS/tensor crates so
//! the whole stack builds offline. This crate provides the small set of
//! operations the GCN substrate (`gvex-gnn`) and the feature-influence
//! engine need: row-major `f64` matrices, matmul, elementwise maps,
//! reductions, softmax, and a handful of constructors.
//!
//! Matrices are plain `Vec<f64>` buffers; all shapes are checked with
//! assertions so that misuse fails loudly in debug and test builds.

mod matrix;
mod ops;

pub use matrix::Matrix;
pub use ops::{cmp_cost, cmp_score, cross_entropy, softmax_rows};

#[cfg(test)]
mod tests;
