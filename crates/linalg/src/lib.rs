//! Minimal linear algebra for GVEX.
//!
//! The GVEX reproduction deliberately avoids external BLAS/tensor crates so
//! the whole stack builds offline. This crate provides the small set of
//! operations the GCN substrate (`gvex-gnn`) and the feature-influence
//! engine need: row-major `f64` matrices, matmul, elementwise maps,
//! reductions, softmax, a handful of constructors — and a CSR sparse
//! matrix ([`CsrMatrix`]) whose sparse×dense products carry the
//! message-passing hot path without ever materializing `|V|²` storage.
//!
//! Dense matrices are plain `Vec<f64>` buffers; all shapes are checked
//! with assertions so that misuse fails loudly in debug and test builds.

mod csr;
mod matrix;
mod ops;

pub use csr::CsrMatrix;
pub use matrix::Matrix;
pub use ops::{cmp_cost, cmp_score, cross_entropy, softmax_rows};

#[cfg(test)]
mod tests;
