use crate::Matrix;
use rayon::prelude::*;

/// Minimum `nnz * rhs_cols` work before [`CsrMatrix::spmm_dense`] fans out
/// across threads; below this the per-call thread-spawn cost of the rayon
/// shim outweighs the parallel win.
const PAR_SPMM_MIN_WORK: usize = 1 << 15;

/// A sparse row-major (CSR) `f64` matrix.
///
/// Storage is the classic triple: `indptr` (length `rows + 1`) delimits
/// each row's slice of `indices` (column ids, ascending within a row) and
/// `values`. Message-passing operators are overwhelmingly sparse, so the
/// GNN hot path works on this type and only materializes a dense
/// [`Matrix`] at API boundaries that genuinely need one.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    /// Panics if the parts are inconsistent: `indptr` must have length
    /// `rows + 1`, start at 0, end at `indices.len()`, be non-decreasing,
    /// and every column index must be `< cols` and strictly ascending
    /// within its row.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length must be rows + 1");
        assert_eq!(indptr.first().copied(), Some(0), "indptr must start at 0");
        assert_eq!(*indptr.last().expect("non-empty indptr"), indices.len());
        assert_eq!(indices.len(), values.len(), "indices/values length mismatch");
        for r in 0..rows {
            assert!(indptr[r] <= indptr[r + 1], "indptr must be non-decreasing");
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "columns must be strictly ascending within row {r}");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "column index out of bounds in row {r}");
            }
        }
        Self { rows, cols, indptr, indices, values }
    }

    /// Builds a CSR matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed; exact zeros are kept (callers drop them
    /// beforehand if structural sparsity matters).
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) out of bounds {rows}x{cols}");
            counts[r + 1] += 1;
        }
        for r in 0..rows {
            counts[r + 1] += counts[r];
        }
        let mut entries: Vec<(u32, f64)> = vec![(0, 0.0); triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            entries[cursor[r]] = (c as u32, v);
            cursor[r] += 1;
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for r in 0..rows {
            let row = &mut entries[counts[r]..counts[r + 1]];
            row.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in row.iter() {
                if indices.len() > *indptr.last().expect("non-empty") && indices.last() == Some(&c)
                {
                    *values.last_mut().expect("paired with indices") += v;
                } else {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self { rows, cols, indptr, indices, values }
    }

    /// Converts a dense matrix, keeping every entry that is not exactly zero.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut indptr = Vec::with_capacity(m.rows() + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    indices.push(c as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self { rows: m.rows(), cols: m.cols(), indptr, indices, values }
    }

    /// The `n`-by-`n` sparse identity.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// A matrix with this one's sparsity structure but new values —
    /// the O(nnz) primitive behind masked propagation operators.
    ///
    /// # Panics
    /// Panics if `values.len() != self.nnz()`.
    pub fn with_values(&self, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), self.values.len(), "values length must equal nnz");
        Self {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row-pointer array (length `rows + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices of the stored entries.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Stored values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let span = self.indptr[r]..self.indptr[r + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// Entry accessor; zero for coordinates outside the structure.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Materializes the dense equivalent.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let row = out.row_mut(r);
            for (&c, &v) in cols.iter().zip(vals) {
                row[c as usize] = v;
            }
        }
        out
    }

    /// Transpose, still in CSR form (counting sort over columns, O(nnz)).
    pub fn transpose(&self) -> CsrMatrix {
        let mut indptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            indptr[c + 1] += indptr[c];
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut cursor = indptr.clone();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let dst = cursor[c as usize];
                indices[dst] = r as u32;
                values[dst] = v;
                cursor[c as usize] += 1;
            }
        }
        // Rows were visited in ascending order, so each transposed row's
        // column indices are already ascending.
        CsrMatrix { rows: self.cols, cols: self.rows, indptr, indices, values }
    }

    /// Sparse matrix–vector product `self · x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "spmv length mismatch");
        (0..self.rows)
            .map(|r| {
                let (cols, vals) = self.row(r);
                cols.iter().zip(vals).map(|(&c, &v)| v * x[c as usize]).sum()
            })
            .collect()
    }

    /// Sparse × dense product `self · rhs`, the message-passing workhorse.
    ///
    /// Output rows are computed independently; when the total work
    /// (`nnz × rhs.cols()`) is large enough the output buffer is split
    /// into disjoint row bands filled in place in parallel
    /// (`par_chunks_mut`) — no per-thread staging buffers and no
    /// post-parallel concatenation. Bands are uniform in rows; real
    /// rayon work-steals residual nnz imbalance away, and under the
    /// shim graph operators are close to uniform-density per row.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn spmm_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm shape mismatch {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let nc = rhs.cols();
        let mut out = Matrix::zeros(self.rows, nc);
        let work = self.nnz() * nc;
        let threads = rayon::current_num_threads();
        if work < PAR_SPMM_MIN_WORK || threads <= 1 || self.rows <= 1 {
            self.spmm_rows_into(0, self.rows, rhs, out.data_mut());
            return out;
        }
        let band_rows = self.rows.div_ceil(threads).max(1);
        out.data_mut().par_chunks_mut(band_rows * nc).enumerate().for_each(|(i, band)| {
            let lo = i * band_rows;
            let hi = (lo + band_rows).min(self.rows);
            self.spmm_rows_into(lo, hi, rhs, band);
        });
        out
    }

    /// Serial kernel: accumulates rows `lo..hi` of `self · rhs` into `buf`
    /// (row-major, `(hi - lo) * rhs.cols()` long, assumed zeroed).
    fn spmm_rows_into(&self, lo: usize, hi: usize, rhs: &Matrix, buf: &mut [f64]) {
        let nc = rhs.cols();
        for r in lo..hi {
            let (cols, vals) = self.row(r);
            let out_row = &mut buf[(r - lo) * nc..(r - lo + 1) * nc];
            for (&c, &v) in cols.iter().zip(vals) {
                for (o, &b) in out_row.iter_mut().zip(rhs.row(c as usize)) {
                    *o += v * b;
                }
            }
        }
    }
}
