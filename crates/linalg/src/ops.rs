use crate::Matrix;
use std::cmp::Ordering;

/// Total-order comparison of two *scores* (things being maximized),
/// ranking NaN below every real value.
///
/// A NaN score (a degenerate model output) must *lose* any
/// maximization: plain `total_cmp` would rank positive NaN above `+∞`
/// — silently preferring garbage — and `partial_cmp().unwrap()` would
/// panic mid-explain. Use in `max_by(|a, b| cmp_score(a, b))` or a
/// descending `sort_by(|a, b| cmp_score(b, a))`.
pub fn cmp_score(a: f64, b: f64) -> Ordering {
    nan_to(a, f64::NEG_INFINITY).total_cmp(&nan_to(b, f64::NEG_INFINITY))
}

/// Total-order comparison of two *costs* (things being minimized),
/// ranking NaN above every real value so it also loses any
/// minimization — the mirror of [`cmp_score`], for `min_by`.
pub fn cmp_cost(a: f64, b: f64) -> Ordering {
    nan_to(a, f64::INFINITY).total_cmp(&nan_to(b, f64::INFINITY))
}

fn nan_to(x: f64, sub: f64) -> f64 {
    if x.is_nan() {
        sub
    } else {
        x
    }
}

/// Row-wise numerically-stable softmax.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for (c, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out.set(r, c, e);
            sum += e;
        }
        for c in 0..logits.cols() {
            out.set(r, c, out.get(r, c) / sum);
        }
    }
    out
}

/// Cross-entropy loss of a single softmax row against a class index,
/// together with the gradient w.r.t. the logits (`p - onehot`).
pub fn cross_entropy(logits: &Matrix, target: usize) -> (f64, Matrix) {
    assert_eq!(logits.rows(), 1, "cross_entropy expects a single logit row");
    assert!(target < logits.cols(), "target class out of range");
    let p = softmax_rows(logits);
    let loss = -(p.get(0, target).max(1e-12)).ln();
    let mut grad = p;
    grad.add_at(0, target, -1.0);
    (loss, grad)
}
