use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
///
/// This is the only tensor type in the workspace. It is intentionally
/// simple: a shape pair plus a flat buffer, with shape-checked operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape {rows}x{cols}");
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested rows (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Glorot/Xavier-uniform initialization, the scheme used for GCN weights.
    pub fn glorot(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable access to the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to element `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// Classic ikj loop order so the inner loop streams over contiguous rows.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                let o_row = out.row_mut(i);
                for (j, &b) in b_row.iter().enumerate() {
                    o_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Scalar multiplication.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += rhs * s` (axpy), used by the Adam optimizer.
    pub fn axpy(&mut self, rhs: &Matrix, s: f64) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * s;
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// ReLU activation.
    pub fn relu(&self) -> Matrix {
        self.map(|x| if x > 0.0 { x } else { 0.0 })
    }

    /// Mask of the ReLU gates (1 where the pre-activation was positive).
    pub fn relu_gate(&self) -> Matrix {
        self.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Column-wise max over rows, producing a `1 x cols` matrix together with
    /// the argmax row index per column (needed for max-pool backprop).
    pub fn max_pool_rows(&self) -> (Matrix, Vec<usize>) {
        assert!(self.rows > 0, "max_pool_rows on empty matrix");
        let mut out = Matrix::zeros(1, self.cols);
        let mut arg = vec![0usize; self.cols];
        for (c, best_row) in arg.iter_mut().enumerate() {
            let mut best = f64::NEG_INFINITY;
            for r in 0..self.rows {
                let v = self.get(r, c);
                if v > best {
                    best = v;
                    *best_row = r;
                }
            }
            out.set(0, c, best);
        }
        (out, arg)
    }

    /// Mean over rows, producing a `1 x cols` matrix.
    pub fn mean_pool_rows(&self) -> Matrix {
        assert!(self.rows > 0, "mean_pool_rows on empty matrix");
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.add_at(0, c, self.get(r, c));
            }
        }
        out.scale(1.0 / self.rows as f64)
    }

    /// Sum of absolute values (L1 norm of the flattened matrix).
    pub fn l1_norm(&self) -> f64 {
        self.data.iter().map(|a| a.abs()).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Squared Euclidean distance between two rows of (possibly different)
    /// matrices with identical column counts.
    pub fn row_distance_sq(&self, r1: usize, other: &Matrix, r2: usize) -> f64 {
        assert_eq!(self.cols, other.cols, "row_distance_sq column mismatch");
        self.row(r1).iter().zip(other.row(r2)).map(|(a, b)| (a - b) * (a - b)).sum()
    }

    /// Extracts the sub-matrix given by `row_idx` (gather of rows).
    pub fn gather_rows(&self, row_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), self.cols);
        for (i, &r) in row_idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }
}
