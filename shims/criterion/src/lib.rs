//! Offline shim for the subset of `criterion` this workspace's benches
//! use: `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and
//! [`black_box`]. Instead of criterion's statistical machinery it runs
//! a warmup, then `sample_size` timed samples of an adaptively chosen
//! iteration count, and prints mean / min / max per benchmark — enough
//! to compare orders of magnitude and track regressions by eye until
//! the real crate can be vendored.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion's own is a shim for
/// the same intrinsic these days).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized (subset of `criterion::BatchSize`).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warmup duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement-time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), config: self.clone() };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Final reporting hook (criterion API compatibility; the shim
    /// reports per-benchmark as it goes).
    pub fn final_summary(&mut self) {}
}

/// Per-benchmark measurement context (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    config: Criterion,
}

impl Bencher {
    /// Times `routine` (the common case).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup, measuring cost to pick an iteration count.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.config.warm_up.div_f64(warm_iters.max(1) as f64);
        let per_sample = self.config.measurement / self.config.sample_size as u32;
        let iters =
            (per_sample.as_secs_f64() / per_iter.as_secs_f64().max(1e-9)).clamp(1.0, 1e9) as u64;
        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed().div_f64(iters as f64));
        }
    }

    /// Times `routine` over inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // One input per measured call: setup cost stays out of the
        // timing, which is all the workspace's benches need.
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "{name:<40} mean {:>12?}   min {:>12?}   max {:>12?}   ({} samples)",
            mean,
            min,
            max,
            self.samples.len()
        );
    }
}

/// Declares a benchmark group (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| black_box(v.len()),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 4);
    }
}
