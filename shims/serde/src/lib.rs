//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Real serde is a visitor-based framework; this shim collapses it to
//! "convert to a JSON-like [`Value`] tree", which is the only thing
//! the workspace does with it (the experiment harness writes JSON
//! result files). [`Serialize`] is implemented for the primitives,
//! strings, tuples, `Option`, `Vec`, and slices the codebase
//! serializes; `#[derive(Serialize, Deserialize)]` comes from the
//! sibling `serde_derive` shim. [`Deserialize`] is a marker trait —
//! nothing in the workspace deserializes yet; grow the shim (or swap
//! in real serde) when something does.

/// JSON-like value tree produced by [`Serialize`].
///
/// Object fields keep insertion order. Re-exported by the `serde_json`
/// shim as `serde_json::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number (non-finite serializes as `null`).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

/// Types that can be converted into a [`Value`] tree.
///
/// Stands in for `serde::Serialize`; the single method replaces the
/// whole `Serializer` machinery.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
///
/// Stands in for `serde::Deserialize`; the single method replaces the
/// `Deserializer`/visitor machinery. The `'de` lifetime is kept so
/// bounds like `for<'de> Deserialize<'de>` written against real serde
/// still compile; the shim never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a [`Value`], or explains why it cannot.
    fn deserialize_from_value(value: &Value) -> Result<Self, String>;
}

impl Value {
    /// Looks up a field of an object by key.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k.as_str() == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize_from_value(value: &Value) -> Result<Self, String> {
        Ok(value.clone())
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_from_value(value: &Value) -> Result<Self, String> {
                let (int, uint) = match value {
                    Value::Int(i) => (Some(*i), u64::try_from(*i).ok()),
                    Value::UInt(u) => (i64::try_from(*u).ok(), Some(*u)),
                    other => return Err(format!("expected integer, got {other:?}")),
                };
                int.and_then(|i| <$t>::try_from(i).ok())
                    .or_else(|| uint.and_then(|u| <$t>::try_from(u).ok()))
                    .ok_or_else(|| format!("integer out of range for {}", stringify!($t)))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize_from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // Serialization writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize_from_value(value: &Value) -> Result<Self, String> {
        f64::deserialize_from_value(value).map(|f| f as f32)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_from_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal: $($name:ident : $idx:tt),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize_from_value(value: &Value) -> Result<Self, String> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::deserialize_from_value(&items[$idx])?,)+))
                    }
                    other => Err(format!(
                        "expected array of length {}, got {other:?}", $len
                    )),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (1: A: 0)
    (2: A: 0, B: 1)
    (3: A: 0, B: 1, C: 2)
    (4: A: 0, B: 1, C: 2, D: 3)
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(1u32.to_value(), Value::Int(1));
        assert_eq!(u64::MAX.to_value(), Value::UInt(u64::MAX));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![(1u32, 2u32, 3u16)].to_value(),
            Value::Array(vec![Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])])
        );
    }
}
