//! Offline shim for the subset of `rayon` this workspace uses.
//!
//! Provides genuinely parallel execution (scoped OS threads over
//! contiguous chunks, results re-assembled in order) behind rayon's
//! names: [`prelude::IntoParallelRefIterator::par_iter`] with `map` /
//! `filter_map` / `collect`, [`ThreadPoolBuilder`] / [`ThreadPool`]
//! with `install`, and [`current_num_threads`]. Unlike real rayon
//! there is no work stealing and pools do not own persistent worker
//! threads — `install` simply scopes a thread-count that `collect`
//! consults when it spawns, and spawned workers inherit an equal share
//! of that width (`width / spawn count`), so the total concurrency of
//! arbitrarily nested parallel iterators stays bounded by the
//! installed pool width, approximating rayon's global pool cap. That
//! preserves rayon's semantics (same results, same ordering
//! guarantees) at a per-call thread-spawn cost that is negligible next
//! to the per-graph explanation work inside.

use std::cell::Cell;

thread_local! {
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Degree of parallelism `collect` uses on this thread: the installed
/// pool width if inside [`ThreadPool::install`], else available
/// hardware parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Error from [`ThreadPoolBuilder::build`]. The shim's build is
/// infallible; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`] (subset of `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width. `0` (the default) means "use hardware
    /// parallelism", matching rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle fixing the degree of parallelism for closures run via
/// [`ThreadPool::install`] (subset of `rayon::ThreadPool`).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it creates.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|t| t.replace(self.num_threads));
        // Restore on unwind too, so a panicking op does not leak the
        // installed width into unrelated later work on this thread.
        struct Reset(usize);
        impl Drop for Reset {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|t| t.set(self.0));
            }
        }
        let _reset = Reset(prev);
        op()
    }

    /// This pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Parallel iterator over `&[T]` (stands in for `rayon::slice::Iter`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Maps each item in parallel, keeping `Some` results (in order).
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> Option<R> + Sync,
    {
        ParFilterMap { items: self.items, f }
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Executes the parallel map and collects the results in order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let threads = current_num_threads();
        parallel_map_slice_ref(self.items, threads, &self.f).into_iter().collect()
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        let threads = current_num_threads();
        parallel_map_slice_ref(self.items, threads, &self.f).into_iter().sum()
    }
}

/// Result of [`ParIter::filter_map`].
pub struct ParFilterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> Option<R> + Sync> ParFilterMap<'a, T, F> {
    /// Executes the parallel filter-map and collects the `Some`
    /// results, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let threads = current_num_threads();
        parallel_map_slice_ref(self.items, threads, &self.f).into_iter().flatten().collect()
    }
}

/// Runs `f` over `items` on up to `threads` scoped OS threads,
/// returning per-item outputs in input order. The mapper receives
/// `&'a T` tied to the input slice (what rayon's by-ref iterators
/// provide).
fn parallel_map_slice_ref<'a, T: Sync, R: Send>(
    items: &'a [T],
    threads: usize,
    f: &(impl Fn(&'a T) -> R + Sync),
) -> Vec<R> {
    // `width` is the caller's effective pool width; the spawn count is
    // additionally clamped by the item count. Each worker inherits an
    // equal share of the remaining width budget (`width / spawn`), so
    // the *total* concurrency of arbitrarily nested parallel iterators
    // stays bounded by the pool width — approximating rayon's global
    // pool cap. A 2-item fan-out on an 8-wide pool leaves each worker a
    // nested width of 4; a fan-out as wide as the pool leaves nested
    // iterators sequential.
    let width = threads.max(1);
    let spawn = width.clamp(1, items.len().max(1));
    if spawn <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let inherit = (width / spawn).max(1);
    let chunk = items.len().div_ceil(spawn);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(spawn);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    INSTALLED_THREADS.with(|t| t.set(inherit));
                    part.iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Parallel iterator over mutable, disjoint chunks of a slice (stands in
/// for the result of `rayon::slice::ParallelSliceMut::par_chunks_mut`).
/// Supports the `enumerate().for_each(..)` shape the workspace uses to
/// fill disjoint output regions in place.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index (subset of
    /// `rayon::iter::ParallelIterator::enumerate`).
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { chunks: self.chunks }
    }
}

/// Result of [`ParChunksMut::enumerate`].
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair, chunks distributed over
    /// up to [`current_num_threads`] scoped OS threads in contiguous
    /// groups (no work stealing, like the rest of the shim).
    pub fn for_each(self, f: impl Fn((usize, &'a mut [T])) + Sync) {
        // As in `parallel_map_slice_ref`: workers share the width
        // budget (`width / spawn`), keeping total nested concurrency
        // bounded by the pool width.
        let width = current_num_threads().max(1);
        let threads = width.clamp(1, self.chunks.len().max(1));
        if threads <= 1 || self.chunks.len() <= 1 {
            for (i, c) in self.chunks.into_iter().enumerate() {
                f((i, c));
            }
            return;
        }
        let per_group = self.chunks.len().div_ceil(threads);
        let mut groups: Vec<Vec<(usize, &'a mut [T])>> = Vec::with_capacity(threads);
        let mut group = Vec::with_capacity(per_group);
        for (i, c) in self.chunks.into_iter().enumerate() {
            group.push((i, c));
            if group.len() == per_group {
                groups.push(std::mem::take(&mut group));
            }
        }
        if !group.is_empty() {
            groups.push(group);
        }
        let inherit = (width / threads).max(1);
        std::thread::scope(|scope| {
            let f = &f;
            for g in groups {
                scope.spawn(move || {
                    // Same width sharing as `parallel_map_slice_ref`.
                    INSTALLED_THREADS.with(|t| t.set(inherit));
                    for (i, c) in g {
                        f((i, c));
                    }
                });
            }
        });
    }
}

pub mod prelude {
    pub use super::{ParChunksMut, ParChunksMutEnumerate, ParFilterMap, ParIter, ParMap};

    /// Mutable-chunk access on slices (subset of
    /// `rayon::slice::ParallelSliceMut`).
    pub trait ParallelSliceMut<T: Send> {
        /// Returns a parallel iterator over mutable chunks of
        /// `chunk_size` elements (the last may be shorter).
        ///
        /// # Panics
        /// Panics if `chunk_size` is zero.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk_size must be non-zero");
            ParChunksMut { chunks: self.chunks_mut(chunk_size).collect() }
        }
    }

    /// By-reference conversion into a parallel iterator (subset of
    /// `rayon::iter::IntoParallelRefIterator`).
    pub trait IntoParallelRefIterator<'a> {
        /// The element type.
        type Item: 'a;

        /// Returns a parallel iterator over `&self`'s elements.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn filter_map_preserves_order() {
        let xs: Vec<u32> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let evens: Vec<u32> = pool
            .install(|| xs.par_iter().filter_map(|&x| (x % 2 == 0).then_some(x * 10)).collect());
        let expected: Vec<u32> = (0..1000).filter(|x| x % 2 == 0).map(|x| x * 10).collect();
        assert_eq!(evens, expected);
    }

    #[test]
    fn install_restores_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_num_threads();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn nested_parallelism_shares_the_width_budget() {
        // A fan-out as wide as the pool leaves nested iterators a
        // budget of 1: total concurrency stays at the pool width.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let xs: Vec<u32> = (0..8).collect();
        let widths: Vec<usize> =
            pool.install(|| xs.par_iter().map(|_| current_num_threads()).collect());
        assert!(widths.iter().all(|&w| w == 1), "width 2 / spawn 2 = 1, got {widths:?}");
        // A narrow fan-out hands the remaining budget to nested
        // iterators: 2 items on a 4-wide pool leave each worker 2.
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let two: Vec<u32> = (0..2).collect();
        let widths: Vec<usize> =
            pool4.install(|| two.par_iter().map(|_| current_num_threads()).collect());
        assert!(widths.iter().all(|&w| w == 2), "width 4 / spawn 2 = 2, got {widths:?}");
    }

    #[test]
    fn map_sum_matches_sequential() {
        let xs: Vec<u64> = (0..500).collect();
        let s: u64 = xs.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, xs.iter().map(|&x| x * 2).sum::<u64>());
    }
}
