//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The test suites only ever write
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(24))]
//!     #[test]
//!     fn prop(seed in 0u64..100, k in 1usize..5) { ... }
//! }
//! ```
//!
//! with numeric-range strategies, `prop_assert!`, and
//! `prop_assert_eq!`. The shim expands each property to a plain
//! `#[test]` that samples every parameter from its range with a
//! deterministic per-case RNG and runs the body `cases` times,
//! reporting the failing inputs on panic. No shrinking — a failure
//! prints the raw sampled values instead of a minimized case.

pub use range_strategy::RangeStrategy;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite
        // fast while still sweeping each seed range well.
        ProptestConfig { cases: 64 }
    }
}

pub mod range_strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Ranges usable as strategies in the shim's `proptest!` macro.
    pub trait RangeStrategy {
        /// Sampled value type.
        type Value: std::fmt::Debug + Clone;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl RangeStrategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl RangeStrategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl RangeStrategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);
}

pub mod prelude {
    pub use crate::range_strategy::RangeStrategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test harness macro (shim for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn name(arg in strategy, ...) { body }`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::RangeStrategy as _;
            let config: $crate::ProptestConfig = $cfg;
            // Deterministic per-property seed: cases differ across
            // properties (via the name) but never across runs.
            let mut hasher = ::std::collections::hash_map::DefaultHasher::new();
            ::std::hash::Hash::hash(stringify!($name), &mut hasher);
            let base = ::std::hash::Hasher::finish(&hasher);
            for case in 0..config.cases {
                let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                    base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = ($strategy).sample(&mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest shim: property `{}` failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Shim for `proptest::prop_assert!` — panics (no `Err` plumbing).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Shim for `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Shim for `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(a in 3u64..17, b in 1usize..4, x in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..4).contains(&b));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn multiple_properties_expand(k in 0u32..5) {
            prop_assert_eq!(k * 2 % 2, 0);
        }
    }

    #[test]
    fn default_config_runs() {
        assert_eq!(ProptestConfig::default().cases, 64);
    }
}
