//! Offline shim for the subset of `smallvec` this workspace uses.
//!
//! [`SmallVec<A>`] keeps smallvec's type-level API — `SmallVec<[T; N]>`
//! with the inline capacity in the type — but stores elements in a
//! plain `Vec<T>`, trading the real crate's inline-storage
//! optimization for zero dependencies. All slice methods are available
//! through `Deref`/`DerefMut`; mutation goes through the same method
//! names (`push`, `clear`, ...) the real crate exposes.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Backing-array marker: `[T; N]` in `SmallVec<[T; N]>`.
pub trait Array {
    /// Element type of the array.
    type Item;

    /// Inline capacity of the real smallvec (unused by the shim).
    const SIZE: usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const SIZE: usize = N;
}

/// Vec-backed stand-in for `smallvec::SmallVec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// Creates an empty vector with at least `cap` capacity.
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec { inner: Vec::with_capacity(cap) }
    }

    /// Appends an element.
    pub fn push(&mut self, value: A::Item) {
        self.inner.push(value);
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Removes and returns the element at `index`, shifting the tail.
    pub fn remove(&mut self, index: usize) -> A::Item {
        self.inner.remove(index)
    }

    /// Inserts `value` at `index`, shifting the tail.
    pub fn insert(&mut self, index: usize, value: A::Item) {
        self.inner.insert(index, value);
    }

    /// Keeps only the elements for which `f` returns `true`.
    pub fn retain(&mut self, mut f: impl FnMut(&mut A::Item) -> bool) {
        self.inner.retain_mut(|x| f(x));
    }

    /// Clears the vector.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Converts into a plain `Vec`.
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];

    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec { inner: self.inner.clone() }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec { inner: iter.into_iter().collect() }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Constructs a [`SmallVec`] like `vec!` (subset of `smallvec::smallvec!`).
#[macro_export]
macro_rules! smallvec {
    ($($x:expr),* $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $( v.push($x); )*
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_and_slice_methods() {
        let mut v: SmallVec<[u32; 6]> = SmallVec::new();
        v.push(3);
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 3);
        assert!(v.contains(&1));
        v.sort_unstable();
        assert_eq!(&v[..], &[1, 2, 3]);
        let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn macro_and_eq() {
        let a: SmallVec<[u8; 2]> = smallvec![1, 2, 3];
        let b: SmallVec<[u8; 2]> = [1u8, 2, 3].into_iter().collect();
        assert_eq!(a, b);
    }
}
