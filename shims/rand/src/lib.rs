//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small, deterministic, API-compatible replacement:
//! [`rngs::StdRng`] is xoshiro256++ seeded via SplitMix64 (the
//! reference construction from Blackman & Vigna), [`Rng::gen_range`]
//! uses rejection sampling for integers, and [`seq::SliceRandom`]
//! provides Fisher–Yates shuffling. Algorithms differ from upstream
//! `rand`, so *sequences* differ from the real crate — everything in
//! this repo seeds explicitly and asserts on properties, not on exact
//! streams, so that is fine. Swap the workspace dependency back to
//! crates.io `rand = "0.8"` to use the real thing.

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable RNGs (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// Panics when the range is empty, matching upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers, fair for bool).
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`, matching upstream.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53-bit uniform in [0, 1), the same resolution rand uses.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding — deterministic, fast, and
    /// statistically solid for test-data generation. Not the same
    /// stream as upstream `StdRng` (ChaCha12), and not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use crate::RngCore;

    /// Types samplable from their standard distribution (stands in
    /// for `Distribution<T> for Standard`, surfaced as `Rng::gen`).
    pub trait Standard: Sized {
        /// Draws one standard-distributed value.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    pub mod uniform {
        use crate::RngCore;

        /// Ranges that can be sampled from directly (subset of
        /// `rand::distributions::uniform::SampleRange`).
        pub trait SampleRange<T> {
            /// Samples one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = sample_u128_below(rng, span);
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = sample_u128_below(rng, span);
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let unit = ((rng.next_u64() >> 11) as $t) * (1.0 / (1u64 << 53) as $t);
                        self.start + unit * (self.end - self.start)
                    }
                }
            )*};
        }
        impl_float_range!(f32, f64);

        /// Uniform value in `[0, bound)` by rejection sampling (no
        /// modulo bias). `bound` must be nonzero.
        fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            if bound <= u64::MAX as u128 {
                let bound = bound as u64;
                let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return (v % bound) as u128;
                    }
                }
            } else {
                loop {
                    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if v < u128::MAX - (u128::MAX % bound) {
                        return v % bound;
                    }
                }
            }
        }
    }
}

pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice extensions (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=4i32);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
