//! Offline shim for `rustc-hash`: the Fx multiply-xor hash used by
//! rustc, plus the `FxHashMap` / `FxHashSet` aliases. The hash
//! function matches the real crate's word-at-a-time algorithm in
//! spirit (same constant, same mixing); it is not cryptographic and,
//! like the original, is meant for fast in-memory tables keyed by
//! small integers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Firefox/rustc "Fx" hasher: rotate, xor, multiply per word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let s: FxHashSet<(u32, u32)> = [(0, 1), (1, 2)].into_iter().collect();
        assert!(s.contains(&(0, 1)) && !s.contains(&(2, 0)));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"gvex");
        b.write(b"gvex");
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }
}
