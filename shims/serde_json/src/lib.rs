//! Offline shim for the subset of `serde_json` this workspace uses:
//! the [`json!`] macro, [`to_string`] / [`to_string_pretty`], and the
//! [`Value`] tree (defined in the `serde` shim and re-exported here
//! under its familiar name). Output is real JSON — string escaping,
//! `null` for non-finite floats (matching serde_json's `Value`
//! behavior), two-space pretty indentation — so downstream notebook
//! tooling reading `results/*.json` sees no difference.

use std::fmt::Write as _;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// (De)serialization error carrying a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Parses JSON text into a `T`.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s).map_err(Error)?;
    T::deserialize_from_value(&value).map_err(Error)
}

/// Converts a [`Value`] tree into a `T`.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize_from_value(&value).map_err(Error)
}

mod parse {
    use super::Value;

    /// Recursive-descent JSON parser (strict enough for round-trips
    /// of this shim's own output and ordinary hand-written JSON).
    pub fn parse(s: &str) -> Result<Value, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", c as char, pos = *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
            Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Value::String),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, b':')?;
                    let value = parse_value(b, pos)?;
                    fields.push((key, value));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                    }
                }
            }
            Some(_) => parse_number(b, pos),
        }
    }

    fn parse_keyword(b: &[u8], pos: &mut usize, kw: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(kw.as_bytes()) {
            *pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid keyword at byte {pos}", pos = *pos))
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not reassembled; the
                            // shim's own writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8
                    // by construction of &str).
                    let s = &b[*pos..];
                    let text = std::str::from_utf8(s).map_err(|_| "invalid UTF-8")?;
                    let c = text.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

/// Converts any [`Serialize`] value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (two-space indent, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Writes `v` as JSON. `indent = None` means compact.
fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f:?}");
            } else {
                // serde_json's Value cannot represent non-finite
                // numbers; they become null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Writes a JSON string literal with the mandatory escapes.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from JSON-ish syntax (subset of
/// `serde_json::json!`): object literals with literal keys, array
/// literals, `null`, and arbitrary `Serialize` expressions as values.
/// Nested object/array *literals* inside values are not supported —
/// pass a nested `json!(...)` call instead (which is valid for the
/// real macro too, so call sites stay portable).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$value))),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::to_value(&$value)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_and_pretty_output() {
        let rows = vec![1u32, 2, 3];
        let v = json!({
            "name": "fig5",
            "f": 0.25f64,
            "rows": rows,
            "edge": (1u32, 2u32, 7u16),
            "missing": None::<u32>,
        });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"name\": \"fig5\""));
        assert!(text.contains("\"f\": 0.25"));
        assert!(text.contains("\"missing\": null"));
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!([1u8, 2u8])).unwrap(), "[1,2]");
    }

    #[test]
    fn escapes_and_nonfinite() {
        let v = json!({ "s": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"s":"a\"b\\c\nd"}"#);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_round_trips() {
        let v = json!({
            "label": 3u16,
            "score": 0.125f64,
            "big": 1e300f64,
            "neg": -42i64,
            "nodes": vec![1u32, 2, 3],
            "edge": (1u32, 2u32, 7u16),
            "ok": true,
            "name": "a\"b\\c\nd",
            "nothing": None::<u32>,
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
        let triple: (u32, u32, u16) = from_str("[1, 2, 7]").unwrap();
        assert_eq!(triple, (1, 2, 7));
        let maybe: Option<f64> = from_str("null").unwrap();
        assert!(maybe.is_none());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
    }
}
