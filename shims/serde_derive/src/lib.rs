//! Offline shim for `serde_derive`, written against `proc_macro` alone
//! (no `syn`/`quote`, since the build environment has no registry
//! access).
//!
//! Supports what the workspace actually derives on: non-generic
//! structs with named fields. `#[derive(Serialize)]` emits an impl of
//! the shim's single-method `Serialize` trait (field-by-field
//! conversion to `serde::Value`); `#[derive(Deserialize)]` emits the
//! marker impl. Anything else (enums, tuple structs, generics)
//! produces a targeted `compile_error!` so the gap is obvious at the
//! use site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a derive input this shim supports.
struct StructInfo {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and named-field list, or an error message.
fn parse_struct(input: TokenStream) -> Result<StructInfo, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, doc comments included) and
    // visibility, then expect `struct <Name> { ... }`.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Skip a `(crate)`-style restriction if present.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                tokens.next();
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(
                    "serde_derive shim: only structs with named fields are supported".into()
                );
            }
            Some(_) => {
                tokens.next();
            }
            None => return Err("serde_derive shim: no struct found".into()),
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive shim: expected struct name".into()),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("serde_derive shim: generic struct `{name}` is not supported"));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("serde_derive shim: tuple struct `{name}` is not supported"));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Ok(StructInfo { name, fields: Vec::new() });
            }
            Some(_) => {}
            None => return Err(format!("serde_derive shim: struct `{name}` has no body")),
        }
    };

    // Walk the field list: skip attributes and visibility, record the
    // field ident, then skip the type up to a comma at angle-depth 0
    // (commas inside `(...)`/`[...]` are invisible here because groups
    // are single tokens; only `<...>` needs explicit depth tracking).
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    'fields: loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde_derive shim: expected field name in `{name}`, found `{other}`"
                ));
            }
            None => break,
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "serde_derive shim: expected `:` after field `{field}` in `{name}`"
                ));
            }
        }
        fields.push(field);
        let mut angle_depth = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => continue 'fields,
                _ => {}
            }
        }
        break;
    }
    Ok(StructInfo { name, fields })
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens")
}

/// Derives the shim `serde::Serialize` (field-wise `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let info = match parse_struct(input) {
        Ok(info) => info,
        Err(msg) => return error(&msg),
    };
    let entries: Vec<String> = info
        .fields
        .iter()
        .map(|f| {
            format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{}])\n\
             }}\n\
         }}",
        info.name,
        entries.join(", ")
    )
    .parse()
    .expect("serialize impl tokens")
}

/// Derives the shim `serde::Deserialize` (field-wise extraction from
/// a `serde::Value` object; missing fields are errors).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let info = match parse_struct(input) {
        Ok(info) => info,
        Err(msg) => return error(&msg),
    };
    let name = &info.name;
    let field_inits: Vec<String> = info
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_from_value(\n\
                     value.get_field({f:?}).ok_or_else(|| ::std::format!(\n\
                         \"missing field `{f}` in {name}\"))?)?"
            )
        })
        .collect();
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize_from_value(\n\
                 value: &::serde::Value,\n\
             ) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 if !matches!(value, ::serde::Value::Object(_)) {{\n\
                     return ::std::result::Result::Err(\n\
                         ::std::format!(\"expected object for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})\n\
             }}\n\
         }}",
        field_inits.join(", ")
    )
    .parse()
    .expect("deserialize impl tokens")
}
