//! Streaming / anytime explanation (paper §5, Fig 9f): StreamGVEX
//! processes node streams in one pass and can be interrupted at any
//! fraction while keeping its 1/4-approximation on the seen prefix.
//!
//! Run with: `cargo run --release --example streaming_anytime`

use gvex_core::{Config, Engine};
use gvex_data::{pcqm4m, DataConfig};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};
use std::time::Instant;

fn main() {
    let mut db = pcqm4m(DataConfig::new(120, 9));
    let split = db.split(0.8, 0.1, 9);
    let mut model = GcnModel::new(9, 32, 3, 3, 9);
    let mut trainer =
        AdamTrainer::new(&model, TrainConfig { epochs: 120, lr: 5e-3, ..TrainConfig::default() });
    trainer.fit(&mut model, &db, &split.train);
    let acc = AdamTrainer::classify_all(&model, &mut db, &split.test);
    println!("molecule classifier test accuracy: {acc:.2}\n");

    let label = 0u16;
    let ids: Vec<u32> =
        split.test.iter().copied().filter(|&id| db.predicted(id) == Some(label)).collect();
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 6)).build();

    println!("anytime sweep: interrupt the node stream at increasing fractions");
    println!(
        "{:<10} {:>12} {:>16} {:>10}",
        "fraction", "runtime (s)", "explainability", "#patterns"
    );
    for pct in [25usize, 50, 75, 100] {
        let start = Instant::now();
        let vid = engine.stream_subset(label, &ids, pct as f64 / 100.0);
        let t = start.elapsed().as_secs_f64();
        let Some(view) = engine.store().get(vid) else { continue };
        println!(
            "{:<10} {:>12.2} {:>16.3} {:>10}",
            format!("{pct}%"),
            t,
            view.explainability,
            view.patterns.len()
        );
    }
    println!("\nRuntime grows roughly linearly with the processed fraction (the");
    println!("per-graph contexts are cached by the engine, so each sweep point");
    println!("measures streaming work), and the explanation view is available at");
    println!("every prefix — the anytime property of Theorem 5.1.");
}
