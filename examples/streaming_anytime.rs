//! Streaming / anytime explanation (paper §5, Fig 9f): StreamGVEX
//! processes node streams in one pass and can be interrupted at any
//! fraction while keeping its 1/4-approximation on the seen prefix.
//!
//! Run with: `cargo run --release --example streaming_anytime`

use gvex_core::{Config, StreamGvex};
use gvex_data::{pcqm4m, DataConfig};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};
use std::time::Instant;

fn main() {
    let mut db = pcqm4m(DataConfig::new(120, 9));
    let split = db.split(0.8, 0.1, 9);
    let mut model = GcnModel::new(9, 32, 3, 3, 9);
    let mut trainer =
        AdamTrainer::new(&model, TrainConfig { epochs: 120, lr: 5e-3, ..TrainConfig::default() });
    trainer.fit(&mut model, &db, &split.train);
    let acc = AdamTrainer::classify_all(&model, &mut db, &split.test);
    println!("molecule classifier test accuracy: {acc:.2}\n");

    let sg = StreamGvex::new(Config::with_bounds(0, 6));
    let label = 0u16;
    let ids: Vec<u32> =
        split.test.iter().copied().filter(|&id| db.predicted(id) == Some(label)).collect();

    println!("anytime sweep: interrupt the node stream at increasing fractions");
    println!(
        "{:<10} {:>12} {:>16} {:>10}",
        "fraction", "runtime (s)", "explainability", "#patterns"
    );
    for pct in [25usize, 50, 75, 100] {
        let start = Instant::now();
        let view = sg.explain_label_fraction(&model, &db, label, &ids, pct as f64 / 100.0);
        let t = start.elapsed().as_secs_f64();
        println!(
            "{:<10} {:>12.2} {:>16.3} {:>10}",
            format!("{pct}%"),
            t,
            view.explainability,
            view.patterns.len()
        );
    }
    println!("\nRuntime grows roughly linearly with the processed fraction, and the");
    println!("explanation view is available at every prefix — the anytime property");
    println!("of Theorem 5.1.");
}
