//! Serving quickstart: boot an HTTP front end over a trained engine,
//! talk to it with the bundled client, and shut down gracefully.
//!
//! Run with: `cargo run --release --example serve_quickstart`

use gvex::core::{Config, Engine};
use gvex::data::{mutagenicity, DataConfig};
use gvex::gnn::{AdamTrainer, GcnModel};
use gvex::serve::{Client, ServeConfig, Server};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A small trained engine, same recipe as the other examples.
    let mut db = mutagenicity(DataConfig::new(24, 7));
    let model = GcnModel::new(14, 16, 2, 2, 7);
    AdamTrainer::classify_all(&model, &mut db, &[]);
    let engine =
        Arc::new(Engine::builder(model, db).config(Config::with_bounds(0, 5)).threads(2).build());

    // Boot the front end on an ephemeral port.
    let handle = Server::start(engine, ServeConfig::default()).expect("server starts");
    println!("serving on http://{}", handle.addr());
    let mut c = Client::connect(handle.addr(), Duration::from_secs(10)).expect("connect");

    // Count everything, then ask for an explanation of label 1.
    let all = c.post("/query", &json!({})).expect("query");
    println!("graphs at head: {}", all.u64_field("count"));
    let exp = c.post("/explain", &json!({ "label": 1u64 })).expect("explain");
    println!("explanation view {} (explainability in body)", exp.u64_field("view"));

    // A pinned session: repeatable reads across a concurrent insert.
    let sid = c.post("/session", &json!({})).expect("session").u64_field("session");
    let path = format!("/session/{sid}/query");
    let before = c.post(&path, &json!({})).expect("session query");
    let graph = json!({
        "types": vec![0u64, 1, 2],
        "edges": Value::Array(vec![json!([0u64, 1u64, 1u64]), json!([1u64, 2u64, 1u64])]),
        "feature_dim": 14u64,
        "truth": 1u64,
    });
    c.post("/insert", &json!({ "graphs": Value::Array(vec![graph]) })).expect("insert");
    let after = c.post(&path, &json!({})).expect("session query");
    println!(
        "session count {} == {} (repeatable), head count {}",
        before.u64_field("count"),
        after.u64_field("count"),
        c.post("/query", &json!({})).expect("query").u64_field("count"),
    );

    // A deadline the server cannot meet is refused up front (503).
    let refused = c.request("POST", "/query", Some(&json!({})), Some(0)).expect("deadline request");
    println!("deadline_ms=0 -> {} (retry-after {:?}s)", refused.status, refused.retry_after);

    // Live operational state, then a graceful drain.
    let stats = c.get("/stats").expect("stats");
    println!("stats: {}", serde_json::to_string(&stats.body).unwrap());
    drop(c);
    handle.shutdown();
    println!("drained and shut down");
}
