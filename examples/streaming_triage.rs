//! Continuous monitoring: malware-stream triage over MalNet-style
//! arrivals. A windowed, durable, budget-capped engine watches a call-
//! graph stream many times larger than its retention window — resident
//! memory and disk stay O(window) while classification and incremental
//! view maintenance run on every batch, and a pinned analyst snapshot
//! keeps reading its frontier unchanged as the window moves past it.
//!
//! Run with: `cargo run --release --example streaming_triage`

use gvex_core::{Config, Engine, RetentionPolicy, ViewQuery, Window};
use gvex_data::{malnet_tiny, DataConfig};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};
use gvex_graph::{Graph, GraphDb, GraphId};

const WINDOW: usize = 16;
const BATCH: usize = 8;
const STREAM_BATCHES: usize = 20; // 160 arrivals = 10x the window

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| entries.filter_map(|e| e.ok()?.metadata().ok().map(|m| m.len())).sum())
        .unwrap_or(0)
}

/// The analyst's pinned frontier: each graph's id plus the node and
/// edge counts observed at pin time.
type Frontier = Vec<(GraphId, usize, usize)>;

fn main() {
    // Train a malware-family classifier on a historical corpus.
    let mut corpus = malnet_tiny(DataConfig::new(40, 7));
    let split = corpus.split(0.8, 0.1, 7);
    let mut model = GcnModel::new(10, 16, 5, 2, 7);
    let mut trainer =
        AdamTrainer::new(&model, TrainConfig { epochs: 60, lr: 5e-3, ..TrainConfig::default() });
    trainer.fit(&mut model, &corpus, &split.train);
    let acc = AdamTrainer::classify_all(&model, &mut corpus, &split.test);
    println!("family classifier test accuracy: {acc:.2}\n");

    // The triage engine starts empty and keeps only the newest WINDOW
    // graphs; durability + a small payload budget bound disk and RAM.
    let dir = std::env::temp_dir().join(format!("gvex-triage-{}", std::process::id()));
    let engine = Engine::builder(model, GraphDb::new())
        .config(Config::with_bounds(0, 5))
        .retention(RetentionPolicy::Window(Window::last_graphs(WINDOW)))
        .durable(&dir)
        .checkpoint_every(4) // checkpoints truncate WALs + GC extents
        .memory_budget(256 << 10)
        .build();

    // The arrival stream: unlabeled call graphs, classified on insert.
    let arrivals: Vec<Graph> = malnet_tiny(DataConfig::new(BATCH * STREAM_BATCHES, 99))
        .iter()
        .map(|(_, g)| g.clone())
        .collect();

    println!(
        "{:>6} {:>6} {:>6} {:>10} {:>10} {:>12} {:>10}",
        "batch", "epoch", "live", "expired", "floor", "resident(B)", "disk(B)"
    );
    let mut analyst: Option<(gvex_core::Snapshot, Frontier)> = None;
    for (i, batch) in arrivals.chunks(BATCH).enumerate() {
        engine.insert_graphs(batch.iter().map(|g| (g.clone(), None)).collect());

        // A third of the way in, an analyst pins the current frontier
        // for a deep-dive; the stream keeps moving underneath.
        if i == STREAM_BATCHES / 3 {
            let snap = engine.snapshot();
            let frontier: Vec<(GraphId, usize, usize)> = engine
                .query(&ViewQuery::new())
                .graphs
                .iter()
                .map(|&id| {
                    let g = snap.db().get_graph(id).expect("pinned read");
                    (id, g.num_nodes(), g.edges().count())
                })
                .collect();
            println!(
                "  -- analyst pins a {}-graph frontier at epoch {}",
                frontier.len(),
                engine.head().0
            );
            analyst = Some((snap, frontier));
        }

        if (i + 1) % 4 == 0 {
            let w = engine.window_stats();
            let resident = engine.pager_stats().map(|p| p.resident_bytes).unwrap_or(0);
            println!(
                "{:>6} {:>6} {:>6} {:>10} {:>10} {:>12} {:>10}",
                i + 1,
                engine.head().0,
                w.live_graphs,
                w.expired_total,
                w.floor.0,
                resident,
                dir_bytes(&dir)
            );
        }
    }

    let w = engine.window_stats();
    println!(
        "\nstream done: {} arrivals, {} expired, {} live (window = {WINDOW})",
        arrivals.len(),
        w.expired_total,
        w.live_graphs
    );
    let triage = engine.query(&ViewQuery::new());
    println!("current window triage by predicted family: {:?}", triage.per_label);

    // The analyst's pinned frontier is still exactly what they pinned,
    // even though every one of those graphs expired long ago.
    let (snap, frontier) = analyst.expect("stream was long enough to pin");
    for (id, nodes, edges) in &frontier {
        let g = snap.db().get_graph(*id).expect("pinned graphs stay readable");
        assert_eq!((g.num_nodes(), g.edges().count()), (*nodes, *edges));
        assert!(!triage.graphs.contains(id), "the head has moved past the pinned frontier");
    }
    println!("analyst session: {} pinned graphs re-read identically after expiry", frontier.len());
    drop(snap); // releasing the pin lets compaction reclaim the frontier

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nResident payloads, database size, and the durable directory all");
    println!(
        "track the {WINDOW}-graph window rather than the {}-graph stream: the",
        arrivals.len()
    );
    println!("retention sweep tombstones expired graphs inside each commit, WALs");
    println!("truncate at checkpoint, and dead extent generations are deleted.");
}
