//! Drug discovery scenario (paper §1, Example 1.1 and case study 1):
//! which substructures make the GNN call a compound mutagenic, and can we
//! query them like toxicophores?
//!
//! Run with: `cargo run --release --example drug_discovery`

use gvex_core::{ApproxGvex, Config};
use gvex_data::{mutagenicity, DataConfig, MUT_ATOM_NAMES, TYPE_N, TYPE_O};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};
use gvex_pattern::{vf2, Pattern};

fn main() {
    let mut db = mutagenicity(DataConfig::new(100, 11));
    let split = db.split(0.8, 0.1, 11);
    let mut model = GcnModel::new(14, 32, 2, 3, 11);
    let mut trainer =
        AdamTrainer::new(&model, TrainConfig { epochs: 120, lr: 5e-3, ..TrainConfig::default() });
    trainer.fit(&mut model, &db, &split.train);
    let acc = AdamTrainer::classify_all(&model, &mut db, &split.test);
    println!("classifier test accuracy: {acc:.2}");

    // Explain the mutagen group.
    let algo = ApproxGvex::new(Config::with_bounds(0, 8));
    let mutagens: Vec<u32> =
        split.test.iter().copied().filter(|&id| db.predicted(id) == Some(1)).collect();
    let view = algo.explain_label(&model, &db, 1, &mutagens);
    println!("mutagen view: {} subgraphs, {} patterns", view.subgraphs.len(), view.patterns.len());

    // Domain query 1: "which toxicophores occur in mutagens?" — scan the
    // pattern tier for nitro-like (N-O) structure.
    println!("\npatterns found (the queryable tier):");
    for (i, p) in view.patterns.iter().enumerate() {
        let types: Vec<&str> =
            (0..p.num_nodes() as u32).map(|v| MUT_ATOM_NAMES[p.node_type(v) as usize]).collect();
        let has_no = (0..p.num_nodes() as u32).any(|v| {
            p.node_type(v) == TYPE_N && p.neighbors(v).iter().any(|&w| p.node_type(w) == TYPE_O)
        });
        println!(
            "  P{}: {:?}, {} bonds{}",
            i + 1,
            types,
            p.num_edges(),
            if has_no { "  <- nitro-like toxicophore" } else { "" }
        );
    }

    // Domain query 2: "which mutagens contain the N-O pattern?" — issue
    // the pattern as a graph query over the whole database.
    let nitro_query = Pattern::new(&[TYPE_N, TYPE_O], &[(0, 1, 1)]);
    let mut hits_mut = 0;
    let mut hits_non = 0;
    for (id, g) in db.iter() {
        if vf2::contains(&nitro_query, g) {
            if db.truth(id) == 1 {
                hits_mut += 1;
            } else {
                hits_non += 1;
            }
        }
    }
    println!("\ngraph query 'N=O' over the database:");
    println!("  mutagens containing it:    {hits_mut}");
    println!("  nonmutagens containing it: {hits_non}");
    println!(
        "  (the pattern discriminates the classes — exactly the paper's aromatic-nitro story)"
    );

    // Counterfactual check on one compound: remove the explanation and
    // re-classify.
    if let Some(sub) = view.subgraphs.first() {
        let g = db.graph(sub.graph_id);
        let (rest, _) = g.remove_nodes(&sub.nodes);
        let before = db.predicted(sub.graph_id).unwrap();
        let after = model.predict(&rest);
        println!(
            "\ncompound G{}: label {before} -> {after} after removing its explanation",
            sub.graph_id
        );
    }
}
