//! Drug discovery scenario (paper §1, Example 1.1 and case study 1):
//! which substructures make the GNN call a compound mutagenic, and can we
//! query them like toxicophores?
//!
//! Run with: `cargo run --release --example drug_discovery`

use gvex_core::{Config, Engine, ViewQuery};
use gvex_data::{mutagenicity, DataConfig, MUT_ATOM_NAMES, TYPE_N, TYPE_O};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};
use gvex_pattern::Pattern;

fn main() {
    let mut db = mutagenicity(DataConfig::new(100, 11));
    let split = db.split(0.8, 0.1, 11);
    let mut model = GcnModel::new(14, 32, 2, 3, 11);
    let mut trainer =
        AdamTrainer::new(&model, TrainConfig { epochs: 120, lr: 5e-3, ..TrainConfig::default() });
    trainer.fit(&mut model, &db, &split.train);
    let acc = AdamTrainer::classify_all(&model, &mut db, &split.test);
    println!("classifier test accuracy: {acc:.2}");

    // Explain the mutagen group through the engine.
    let mutagens: Vec<u32> =
        split.test.iter().copied().filter(|&id| db.predicted(id) == Some(1)).collect();
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 8)).build();
    let vid = engine.explain_subset(1, &mutagens);
    let Some(view) = engine.store().get(vid) else { return };
    println!("mutagen view: {} subgraphs, {} patterns", view.subgraphs.len(), view.patterns.len());

    // Domain query 1: "which toxicophores occur in mutagens?" — scan the
    // pattern tier for nitro-like (N-O) structure.
    println!("\npatterns found (the queryable tier):");
    for (i, p) in view.patterns.iter().enumerate() {
        let types: Vec<&str> =
            (0..p.num_nodes() as u32).map(|v| MUT_ATOM_NAMES[p.node_type(v) as usize]).collect();
        let has_no = (0..p.num_nodes() as u32).any(|v| {
            p.node_type(v) == TYPE_N && p.neighbors(v).iter().any(|&w| p.node_type(w) == TYPE_O)
        });
        println!(
            "  P{}: {:?}, {} bonds{}",
            i + 1,
            types,
            p.num_edges(),
            if has_no { "  <- nitro-like toxicophore" } else { "" }
        );
    }

    // Domain query 2: "which mutagens contain the N-O pattern?" — issue
    // the pattern as an indexed query over the database: one probe
    // answers both the match set and the per-label counts.
    let nitro_query = Pattern::new(&[TYPE_N, TYPE_O], &[(0, 1, 1)]);
    let hits = engine.query(&ViewQuery::pattern(nitro_query.clone()));
    println!("\ngraph query 'N=O' over the database:");
    println!("  mutagens containing it:    {}", hits.count_for(1));
    println!("  nonmutagens containing it: {}", hits.count_for(0));
    println!(
        "  (the pattern discriminates the classes — exactly the paper's aromatic-nitro story)"
    );

    // Domain query 3: restrict the same pattern to the explanation view —
    // "in which compounds did the explainer single the N-O group out?"
    let in_view = engine.query(&ViewQuery::pattern(nitro_query).in_views([vid]));
    println!("  explanation subgraphs containing it: {}", in_view.len());

    // Counterfactual check on one compound: remove the explanation and
    // re-classify.
    if let Some(sub) = view.subgraphs.first() {
        let db = engine.db();
        let (rest, _) = db.graph(sub.graph_id).remove_nodes(&sub.nodes);
        let before = db.predicted(sub.graph_id).unwrap();
        drop(db);
        let after = engine.model().predict(&rest);
        println!(
            "\ncompound G{}: label {before} -> {after} after removing its explanation",
            sub.graph_id
        );
    }
}
