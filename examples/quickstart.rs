//! Quickstart: train a GCN on a molecule-like dataset, build the GVEX
//! [`Engine`](gvex_core::Engine), generate a two-tier explanation view
//! for the "mutagen" label, and query it.
//!
//! Run with: `cargo run --release --example quickstart`

use gvex_core::{verify, Config, Engine, ViewQuery};
use gvex_data::{mutagenicity, DataConfig, MUT_ATOM_NAMES};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};

fn main() {
    // 1. A graph database: molecule-like graphs, label 1 = mutagen.
    let mut db = mutagenicity(DataConfig::new(80, 7));
    println!("database: {} graphs, avg {:.1} nodes", db.len(), db.avg_nodes());

    // 2. Train the classifier of §6.1: 3-layer GCN + max pool + FC, Adam.
    let split = db.split(0.8, 0.1, 7);
    let mut model = GcnModel::new(14, 32, 2, 3, 7);
    let mut trainer =
        AdamTrainer::new(&model, TrainConfig { epochs: 120, lr: 5e-3, ..TrainConfig::default() });
    let report = trainer.fit(&mut model, &db, &split.train);
    let acc = AdamTrainer::classify_all(&model, &mut db, &split.test);
    println!(
        "trained {} epochs, train acc {:.2}, test acc {:.2}",
        report.epochs_run, report.train_accuracy, acc
    );

    // 3. Build the engine (it owns the model, database, configuration,
    //    context cache, and the indexed view store), then generate an
    //    explanation view for the mutagen label with bounds [0, 8].
    let ids: Vec<u32> =
        split.test.iter().copied().filter(|&id| db.predicted(id) == Some(1)).collect();
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 8)).build();
    let vid = engine.explain_subset(1, &ids);
    // `get` is the non-panicking handle lookup (a stale or foreign id
    // yields `None` instead of a panic).
    let Some(view) = engine.store().get(vid) else { return };
    println!("\nexplanation view for label 'mutagen' ({} graphs):", view.subgraphs.len());
    println!("  explainability f = {:.3}", view.explainability);
    println!("  edge loss        = {:.2}%", view.edge_loss * 100.0);

    // 4. Lower tier: explanation subgraphs.
    let db = engine.db();
    for sub in view.subgraphs.iter().take(3) {
        let g = db.graph(sub.graph_id);
        let atoms: Vec<&str> =
            sub.nodes.iter().map(|&v| MUT_ATOM_NAMES[g.node_type(v) as usize]).collect();
        println!(
            "  G{} -> {} atoms {:?} (consistent={}, counterfactual={})",
            sub.graph_id,
            sub.nodes.len(),
            atoms,
            sub.consistent,
            sub.counterfactual
        );
    }
    drop(db);

    // 5. Higher tier: queryable patterns covering all subgraph nodes —
    //    and, being indexed, each can be issued as a database query.
    println!("  patterns ({}):", view.patterns.len());
    for p in view.patterns.iter().take(5) {
        let types: Vec<&str> =
            (0..p.num_nodes() as u32).map(|v| MUT_ATOM_NAMES[p.node_type(v) as usize]).collect();
        let hits = engine.query(&ViewQuery::pattern(p.clone()));
        println!(
            "    {:?} with {} bonds -> occurs in {} database graphs",
            types,
            p.num_edges(),
            hits.len()
        );
    }

    // 6. Verify the view against the three constraints of §3.3.
    let v = verify::verify_view(engine.model(), &engine.db(), &view, engine.config());
    println!(
        "\nview verification: C1(graph view)={} C2(explanation)={} C3(coverage)={}",
        v.c1_graph_view, v.c2_explanation, v.c3_coverage
    );
}
