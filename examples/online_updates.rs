//! Online updates: stream graphs into a **live** engine and watch the
//! per-label explanation views evolve epoch by epoch.
//!
//! The engine's database mutates under readers: each
//! [`Engine::insert_graph`](gvex_core::Engine::insert_graph) classifies
//! the arrival, extends the query indexes incrementally, applies the
//! arrival as a streaming delta to its label's view (incremental view
//! maintenance, with the paper's one-pass `StreamGVEX` as the
//! delta-application engine), and advances the head epoch — while a
//! [`Snapshot`](gvex_core::Snapshot) pinned before the mutations keeps
//! answering queries against the state it was taken at.
//!
//! Run with: `cargo run --release --example online_updates`

use gvex_core::{Config, Engine, ViewQuery};
use gvex_data::{mutagenicity, DataConfig};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};
use gvex_pattern::Pattern;

fn main() {
    // 1. Bootstrap: a base database and a trained classifier.
    let mut db = mutagenicity(DataConfig::new(60, 7));
    let split = db.split(0.8, 0.1, 7);
    let mut model = GcnModel::new(14, 32, 2, 3, 7);
    let mut trainer =
        AdamTrainer::new(&model, TrainConfig { epochs: 120, lr: 5e-3, ..TrainConfig::default() });
    trainer.fit(&mut model, &db, &split.train);
    let acc = AdamTrainer::classify_all(&model, &mut db, &split.test);
    println!("classifier test accuracy: {acc:.2}");

    // Arrivals come from a second simulator run the engine has not seen.
    let arrivals = mutagenicity(DataConfig::new(10, 99));

    // 2. A live engine: views registered by `stream` (or `explain_label`)
    //    are kept current across mutations; the staleness bound caps how
    //    many incremental deltas may accumulate before a full recompute.
    let engine =
        Engine::builder(model, db).config(Config::with_bounds(0, 6)).staleness_bound(16).build();
    let labels = engine.db().labels();
    let vids: Vec<_> = labels.iter().map(|&l| engine.stream(l, 1.0)).collect();
    for (&label, &vid) in labels.iter().zip(&vids) {
        let view = engine.store().get(vid).expect("freshly generated view");
        println!(
            "initial view for label {label}: {} subgraphs, {} patterns (epoch {})",
            view.subgraphs.len(),
            view.patterns.len(),
            engine.head()
        );
    }

    // 3. Pin a snapshot: this reader's world stops changing here.
    let snap = engine.snapshot();
    let nitro = Pattern::new(&[gvex_data::TYPE_N, gvex_data::TYPE_O], &[(0, 1, 1)]);
    let hits_then = snap.query(&ViewQuery::pattern(nitro.clone()));
    println!(
        "\nsnapshot pinned at epoch {}: {} graphs, {} N=O matches",
        snap.epoch(),
        snap.len(),
        hits_then.len()
    );

    // 4. Stream the arrivals in, one epoch each, printing the view delta.
    println!("\nstreaming {} arrivals into the live engine:", arrivals.len());
    let mut inserted = Vec::new();
    for (aid, g) in arrivals.iter() {
        let truth = arrivals.truth(aid);
        let (id, epoch) = engine.insert_graph(g.clone(), Some(truth));
        inserted.push(id);
        let label = engine.db().predicted(id).expect("insert classifies");
        let vid = vids[labels.iter().position(|&l| l == label).expect("known label")];
        let view = engine.store().get(vid).expect("maintained view");
        println!(
            "  {epoch}: G{id} -> label {label}; view now {} subgraphs, {} patterns, f = {:.3} \
             (staleness {})",
            view.subgraphs.len(),
            view.patterns.len(),
            view.explainability,
            engine.staleness(label).unwrap_or(0),
        );
    }

    // 5. Remove the first half of the arrivals again (tombstone + compact).
    let gone = &inserted[..inserted.len() / 2];
    let epoch = engine.remove_graphs(gone);
    println!("\n{epoch}: removed {} arrivals again", gone.len());
    for (&label, &vid) in labels.iter().zip(&vids) {
        let view = engine.store().get(vid).expect("maintained view");
        println!("  label {label}: view back to {} subgraphs", view.subgraphs.len());
    }

    // 6. The pinned snapshot never moved.
    let hits_now = engine.query(&ViewQuery::pattern(nitro));
    println!(
        "\nhead at epoch {}: {} graphs, {} N=O matches; snapshot still at epoch {}: {} graphs, \
         {} N=O matches",
        engine.head(),
        engine.db().len(),
        hits_now.len(),
        snap.epoch(),
        snap.len(),
        snap.query(&ViewQuery::pattern(Pattern::new(
            &[gvex_data::TYPE_N, gvex_data::TYPE_O],
            &[(0, 1, 1)]
        )))
        .len()
    );
    drop(snap);
    let floor = engine.compact();
    println!("snapshot dropped; compacted up to {floor} ({} pins left)", engine.pinned_snapshots());
}
