//! Social analysis scenario (paper case study 2, Fig 11): explain why the
//! GNN separates question-answer threads from open discussions on a
//! Reddit-like dataset, under user-configurable coverage bounds.
//!
//! Run with: `cargo run --release --example social_analysis`

use gvex_core::{query, Config, Engine};
use gvex_data::{reddit_binary, DataConfig};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};

fn main() {
    let mut db = reddit_binary(DataConfig::new(60, 3));
    let split = db.split(0.8, 0.1, 3);
    let mut model = GcnModel::new(db.graph(0).feature_dim(), 32, 2, 3, 3);
    let mut trainer =
        AdamTrainer::new(&model, TrainConfig { epochs: 150, lr: 5e-3, ..TrainConfig::default() });
    trainer.fit(&mut model, &db, &split.train);
    let acc = AdamTrainer::classify_all(&model, &mut db, &split.test);
    println!("thread classifier test accuracy: {acc:.2}");
    println!("(label 0 = question-answer, label 1 = open discussion)\n");

    // The configurable property (§2): different coverage bounds per label
    // let an analyst ask for detailed Q&A explanations but coarse
    // discussion ones.
    let cfg = Config::with_bounds(0, 6).bound_label(0, 2, 10).bound_label(1, 1, 5);
    let test = split.test.clone();
    let engine = Engine::builder(model, db).config(cfg).build();

    let mut vids = Vec::new();
    for label in [0u16, 1] {
        let ids: Vec<u32> =
            test.iter().copied().filter(|&id| engine.db().predicted(id) == Some(label)).collect();
        let vid = engine.explain_subset(label, &ids);
        vids.push(vid);
        let Some(view) = engine.store().get(vid) else { continue };
        let name = if label == 0 { "question-answer" } else { "discussion" };
        println!("view for '{name}' ({} threads):", view.subgraphs.len());
        println!("  explainability = {:.3}", view.explainability);
        for (i, p) in view.patterns.iter().take(4).enumerate() {
            // Describe the interaction shape.
            let n = p.num_nodes();
            let max_deg = (0..n as u32).map(|v| p.neighbors(v).len()).max().unwrap_or(0);
            let shape = if n >= 3 && max_deg == n - 1 && p.num_edges() == n - 1 {
                "star-like (hub post with many replies)"
            } else if p.num_edges() >= n {
                "dense (expert-asker biclique region)"
            } else {
                "sparse chain"
            };
            println!("  P{}: {} users, {} replies -> {shape}", i + 1, n, p.num_edges());
        }
        println!();
    }

    // Cross-view comparison (Example 1.1): which interaction patterns
    // separate the two classes? Index probes, not database scans.
    let (qa, disc) = (vids[0], vids[1]);
    let shared = query::shared_patterns(engine.store(), &engine.db(), qa, disc);
    let exclusive = query::exclusive_patterns(engine.store(), &engine.db(), qa, disc);
    println!(
        "Q&A patterns also seen in discussion explanations: {}; exclusive to Q&A: {}",
        shared.len(),
        exclusive.len()
    );
    println!("The two views expose the paper's finding: discussions look star-like,");
    println!("Q&A threads look biclique-like — both directly queryable as patterns.");
}
