//! HTTP serving integration tests: framing edge cases (malformed
//! request lines, oversized bodies, stalled clients), deadline-based
//! admission (expired requests are 503'd and never executed),
//! pinned-snapshot sessions (byte-identical repeatable reads across an
//! interleaved write batch), micro-batching, health endpoints, and
//! graceful shutdown draining admitted work.

use gvex::core::{Config, Engine, RetentionPolicy, Window};
use gvex::data::{mutagenicity, DataConfig, TYPE_N, TYPE_O};
use gvex::gnn::{AdamTrainer, GcnModel};
use gvex::serve::{live_graphs, Client, ServeConfig, Server, ServerHandle};
use serde_json::{json, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn engine(n: usize, seed: u64) -> Arc<Engine> {
    let mut db = mutagenicity(DataConfig::new(n, seed));
    let model = GcnModel::new(14, 16, 2, 2, seed);
    AdamTrainer::classify_all(&model, &mut db, &[]);
    Arc::new(Engine::builder(model, db).config(Config::with_bounds(0, 5)).threads(2).build())
}

fn serve(n: usize, seed: u64, tweak: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut config = ServeConfig {
        accept_threads: 4,
        exec_threads: 2,
        read_timeout: Duration::from_millis(500),
        batch_window: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    tweak(&mut config);
    Server::start(engine(n, seed), config).expect("server starts")
}

fn client(handle: &ServerHandle) -> Client {
    Client::connect(handle.addr(), TIMEOUT).expect("client connects")
}

/// A minimal insertable graph in wire form (feature_dim matches the
/// mutagenicity models).
fn wire_graph(truth: u64) -> Value {
    json!({
        "types": vec![0u64, 1, 2],
        "edges": Value::Array(vec![
            json!([0u64, 1u64, 1u64]),
            json!([1u64, 2u64, 1u64]),
        ]),
        "feature_dim": 14u64,
        "truth": truth,
    })
}

#[test]
fn query_explain_view_round_trip() {
    let handle = serve(16, 7, |_| {});
    let mut c = client(&handle);

    let all = c.post("/query", &json!({})).unwrap();
    assert_eq!(all.status, 200);
    assert!(all.u64_field("count") > 0);
    assert_eq!(all.u64_field("count"), live_graphs(handle.engine()) as u64);

    // Pattern query over the wire matches the in-process engine.
    let nitro = json!({
        "types": vec![TYPE_N as u64, TYPE_O as u64],
        "edges": Value::Array(vec![json!([0u64, 1u64, 1u64])]),
    });
    let hits = c.post("/query", &json!({ "pattern": nitro })).unwrap();
    assert_eq!(hits.status, 200);

    // Explain, then resolve the returned view handle.
    let exp = c.post("/explain", &json!({ "label": 1u64 })).unwrap();
    assert_eq!(exp.status, 200, "explain failed: {:?}", exp.body);
    let vid = exp.u64_field("view");
    let view = c.get(&format!("/view/{vid}")).unwrap();
    assert_eq!(view.status, 200);
    assert_eq!(view.u64_field("view"), vid);
    assert_eq!(c.get("/view/9999").unwrap().status, 404);

    handle.shutdown();
}

#[test]
fn insert_and_remove_over_the_wire() {
    let handle = serve(12, 11, |_| {});
    let mut c = client(&handle);
    let before = live_graphs(handle.engine());

    let ins = c
        .post("/insert", &json!({ "graphs": Value::Array(vec![wire_graph(1), wire_graph(0)]) }))
        .unwrap();
    assert_eq!(ins.status, 200, "insert failed: {:?}", ins.body);
    let Some(Value::Array(ids)) = ins.body.get_field("ids") else {
        panic!("insert response missing ids: {:?}", ins.body)
    };
    assert_eq!(ids.len(), 2);
    assert_eq!(live_graphs(handle.engine()), before + 2);

    let ids: Vec<u64> = ids
        .iter()
        .map(|v| match v {
            Value::UInt(u) => *u,
            Value::Int(i) => *i as u64,
            other => panic!("bad id {other:?}"),
        })
        .collect();
    let rm = c.post("/remove", &json!({ "ids": ids })).unwrap();
    assert_eq!(rm.status, 200);
    assert_eq!(live_graphs(handle.engine()), before);

    handle.shutdown();
}

// ---- framing edge cases (satellite: defensive HTTP) -------------------

#[test]
fn malformed_request_line_is_a_400() {
    let handle = serve(8, 3, |_| {});
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(b"THIS IS NOT HTTP AT ALL\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
    assert!(text.contains("connection: close"), "framing errors must close: {text}");
    handle.shutdown();
}

#[test]
fn oversized_body_is_a_413_without_reading_it() {
    let handle = serve(8, 3, |c| c.max_body = 1024);
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    // Declare 10 MiB but send none of it: the server must answer from
    // the declaration alone.
    raw.write_all(b"POST /query HTTP/1.1\r\ncontent-length: 10485760\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
    handle.shutdown();
}

#[test]
fn stalled_client_times_out_without_wedging_the_worker() {
    let handle = serve(8, 3, |c| c.read_timeout = Duration::from_millis(200));
    // Send half a request line, then stall past the read timeout.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(b"POST /quer").unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 408"), "stalled mid-request should 408: {text}");
    // The worker the stalled client held must be serving again.
    let mut c = client(&handle);
    assert_eq!(c.get("/healthz").unwrap().status, 200);
    handle.shutdown();
}

#[test]
fn unknown_route_and_wrong_method() {
    let handle = serve(8, 3, |_| {});
    let mut c = client(&handle);
    assert_eq!(c.post("/nope", &json!({})).unwrap().status, 404);
    assert_eq!(c.request("GET", "/query", None, None).unwrap().status, 405);
    assert_eq!(c.request("POST", "/query", None, None).unwrap().status, 411);
    handle.shutdown();
}

// ---- admission control ------------------------------------------------

/// The hard guarantee: a request arriving with an already-expired
/// deadline is rejected with 503 + Retry-After and its write is never
/// applied to the engine.
#[test]
fn expired_deadline_is_rejected_and_never_executed() {
    let handle = serve(12, 5, |_| {});
    let before = live_graphs(handle.engine());
    let mut c = client(&handle);
    for _ in 0..5 {
        let r = c
            .request(
                "POST",
                "/insert",
                Some(&json!({ "graphs": Value::Array(vec![wire_graph(1)]) })),
                Some(0), // deadline already passed on arrival
            )
            .unwrap();
        assert_eq!(r.status, 503, "expired deadline must be rejected: {:?}", r.body);
        assert!(r.retry_after.is_some(), "503 must carry Retry-After");
    }
    // Give any (erroneously) admitted write time to land, then check
    // nothing did.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(live_graphs(handle.engine()), before, "expired inserts must never execute");
    let stats = c.get("/stats").unwrap();
    let Some(adm) = stats.body.get_field("admission") else { panic!("no admission block") };
    assert!(
        gvex::serve::wire::u64_field(adm, "rejected_total").unwrap() >= 5,
        "rejections must be counted: {adm:?}"
    );
    handle.shutdown();
}

// ---- sessions ---------------------------------------------------------

/// Repeatable reads: a pinned session returns byte-identical results
/// across an interleaved write batch, while head queries see the write.
#[test]
fn session_reads_are_repeatable_across_writes() {
    let handle = serve(14, 9, |_| {});
    let mut c = client(&handle);

    let opened = c.post("/session", &json!({})).unwrap();
    assert_eq!(opened.status, 200);
    let sid = opened.u64_field("session");
    let q = json!({});
    let path = format!("/session/{sid}/query");

    let first = c.post(&path, &q).unwrap();
    assert_eq!(first.status, 200);

    // Interleaved writes through the same front end.
    let ins = c
        .post(
            "/insert",
            &json!({ "graphs": Value::Array(vec![wire_graph(1), wire_graph(0), wire_graph(1)]) }),
        )
        .unwrap();
    assert_eq!(ins.status, 200);

    let second = c.post(&path, &q).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(first.raw, second.raw, "pinned session reads must be byte-identical");

    // The head sees the writes the session does not.
    let head = c.post("/query", &q).unwrap();
    assert_eq!(head.u64_field("count"), first.u64_field("count") + 3);

    // Closing releases the pin; the id is gone afterwards.
    assert_eq!(c.request("DELETE", &format!("/session/{sid}"), None, None).unwrap().status, 200);
    assert_eq!(c.post(&path, &q).unwrap().status, 410);
    handle.shutdown();
}

/// An expired session answers 410 and its snapshot pin is released by
/// the sweeper even with zero traffic (the flusher tick drives expiry).
#[test]
fn sessions_expire_and_release_their_pins() {
    let handle = serve(10, 13, |c| {
        c.session_ttl = Duration::from_millis(50);
        c.batch_window = Duration::from_millis(10);
    });
    let mut c = client(&handle);
    let pins_before = handle.engine().pinned_snapshots();
    let sid = c.post("/session", &json!({})).unwrap().u64_field("session");
    assert!(handle.engine().pinned_snapshots() > pins_before);
    // Wait out the TTL plus a few sweeper ticks, with no traffic.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(handle.engine().pinned_snapshots(), pins_before, "sweeper must release the pin");
    assert_eq!(c.post(&format!("/session/{sid}/query"), &json!({})).unwrap().status, 410);
    handle.shutdown();
}

// ---- micro-batching ---------------------------------------------------

/// Concurrent explains for one label merge into a single engine call:
/// every waiter gets the same view id and the batch counters show >1
/// request per flush.
#[test]
fn concurrent_explains_batch_into_one_call() {
    let handle = serve(14, 21, |c| c.batch_window = Duration::from_millis(150));
    let addr = handle.addr();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, TIMEOUT).unwrap();
                let r = c.post("/explain", &json!({ "label": 1u64 })).unwrap();
                assert_eq!(r.status, 200, "explain failed: {:?}", r.body);
                r.u64_field("view")
            })
        })
        .collect();
    let views: Vec<u64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert!(views.windows(2).all(|w| w[0] == w[1]), "batched explains share one view: {views:?}");
    assert!(handle.stats().batch_occupancy() > 1.0, "expected >1 request per flush");
    handle.shutdown();
}

// ---- health endpoints -------------------------------------------------

#[test]
fn healthz_and_stats_report_engine_state() {
    let handle = serve(12, 17, |_| {});
    let mut c = client(&handle);
    c.post("/explain", &json!({ "label": 0u64 })).unwrap();

    let h = c.get("/healthz").unwrap();
    assert_eq!(h.status, 200);
    assert_eq!(h.body.get_field("status"), Some(&Value::String("ok".into())));

    let s = c.get("/stats").unwrap();
    assert_eq!(s.status, 200);
    let eng = s.body.get_field("engine").expect("engine block");
    assert_eq!(gvex::serve::wire::u64_field(eng, "head").unwrap(), handle.engine().head().0,);
    for key in ["pinned_snapshots", "shard_probes", "num_shards", "pool_width"] {
        assert!(eng.get_field(key).is_some(), "missing engine.{key}");
    }
    assert!(eng.get_field("staleness").is_some());
    for key in ["queue", "admission", "batch", "sessions", "responses"] {
        assert!(s.body.get_field(key).is_some(), "missing stats.{key}");
    }
    handle.shutdown();
}

// ---- graceful shutdown ------------------------------------------------

/// Shutdown drains: requests sitting in a batch bucket when shutdown
/// begins still complete (the final flush runs before the queue closes),
/// and the listener refuses connections afterwards.
#[test]
fn graceful_shutdown_drains_admitted_work() {
    let handle = serve(12, 23, |c| {
        // A long window parks the inserts in the bucket so shutdown's
        // final flush is what drains them.
        c.batch_window = Duration::from_secs(30);
        c.max_batch = 1000;
    });
    let addr = handle.addr();
    let before = live_graphs(handle.engine());
    let workers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, TIMEOUT).unwrap();
                c.post("/insert", &json!({ "graphs": Value::Array(vec![wire_graph(1)]) })).unwrap()
            })
        })
        .collect();
    // Let the inserts reach the bucket, then shut down underneath them.
    std::thread::sleep(Duration::from_millis(200));
    let engine = Arc::clone(handle.engine());
    handle.shutdown();
    for w in workers {
        let r = w.join().unwrap();
        assert_eq!(r.status, 200, "admitted insert must drain on shutdown: {:?}", r.body);
    }
    assert_eq!(live_graphs(&engine), before + 3);
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can still accept; a subsequent read sees EOF.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = [0u8; 1];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        },
        "listener must be closed after shutdown"
    );
}

// ---- streaming ingest -------------------------------------------------

/// A server over a *windowed* engine (the `serve` helper builds
/// keep-all engines), so ingest tests can watch the sweep keep the
/// resident set bounded while the stream runs past it.
fn windowed_serve(n: usize, seed: u64, keep: usize) -> ServerHandle {
    let mut db = mutagenicity(DataConfig::new(n, seed));
    let model = GcnModel::new(14, 16, 2, 2, seed);
    AdamTrainer::classify_all(&model, &mut db, &[]);
    let engine = Arc::new(
        Engine::builder(model, db)
            .config(Config::with_bounds(0, 5))
            .threads(2)
            .retention(RetentionPolicy::Window(Window::last_graphs(keep)))
            .build(),
    );
    let config = ServeConfig {
        accept_threads: 2,
        exec_threads: 2,
        read_timeout: Duration::from_millis(500),
        batch_window: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    Server::start(engine, config).expect("server starts")
}

/// Chunked NDJSON: one commit per chunk, the window holds, the summary
/// reports the gauges, and the connection stays reusable.
#[test]
fn chunked_ingest_commits_per_chunk_within_the_window() {
    let handle = windowed_serve(6, 31, 4);
    let mut c = client(&handle);
    let chunks: Vec<Vec<Value>> =
        (0..3).map(|i| vec![wire_graph(i % 2), wire_graph((i + 1) % 2)]).collect();
    let r = c.ingest_chunked(&chunks).unwrap();
    assert_eq!(r.status, 200, "ingest failed: {:?}", r.body);
    assert_eq!(r.u64_field("ingested"), 6);
    assert_eq!(r.u64_field("batches"), 3, "one commit per chunk");
    assert!(r.u64_field("epoch") > 0);
    let window = r.body.get_field("window").expect("ingest response carries window gauges");
    assert!(
        gvex::serve::wire::u64_field(window, "live_graphs").unwrap() <= 4,
        "sweep must hold the window during ingest: {window:?}"
    );
    assert!(live_graphs(handle.engine()) <= 4, "engine resident set exceeds the window");

    // The connection survives a clean chunked body, and /stats now
    // reports the ingest counters and the engine's window gauges.
    let s = c.get("/stats").unwrap();
    assert_eq!(s.status, 200);
    let ing = s.body.get_field("ingest").expect("stats.ingest block");
    assert_eq!(gvex::serve::wire::u64_field(ing, "requests").unwrap(), 1);
    assert_eq!(gvex::serve::wire::u64_field(ing, "chunks").unwrap(), 3);
    assert_eq!(gvex::serve::wire::u64_field(ing, "graphs").unwrap(), 6);
    let eng = s.body.get_field("engine").expect("engine block");
    let window = eng.get_field("window").expect("engine.window block");
    assert!(gvex::serve::wire::u64_field(window, "expired_total").unwrap() > 0);
    handle.shutdown();
}

/// A line split across two chunks is carried over and committed whole.
#[test]
fn ingest_reassembles_lines_split_across_chunks() {
    let handle = windowed_serve(6, 33, 8);
    let line = serde_json::to_string(&wire_graph(1)).unwrap() + "\n";
    let (head, tail) = line.split_at(line.len() / 2);
    let second = serde_json::to_string(&wire_graph(0)).unwrap() + "\n";
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(
        b"POST /ingest HTTP/1.1\r\nhost: gvex\r\nconnection: close\r\n\
          transfer-encoding: chunked\r\n\r\n",
    )
    .unwrap();
    for chunk in [head.to_string(), format!("{tail}{second}")] {
        raw.write_all(format!("{:x}\r\n{chunk}\r\n", chunk.len()).as_bytes()).unwrap();
    }
    raw.write_all(b"0\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
    assert!(text.contains("\"ingested\":2"), "both lines must land: {text}");
    // The first chunk held no complete line, so only one commit ran.
    assert!(text.contains("\"batches\":1"), "split line must not split the commit: {text}");
    handle.shutdown();
}

/// A plain Content-Length NDJSON body is one chunk; the final line may
/// omit its newline.
#[test]
fn plain_body_ingest_is_a_single_chunk() {
    let handle = windowed_serve(6, 35, 8);
    let before = live_graphs(handle.engine());
    let body = format!(
        "{}\n{}",
        serde_json::to_string(&wire_graph(1)).unwrap(),
        serde_json::to_string(&wire_graph(0)).unwrap()
    );
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(
        format!(
            "POST /ingest HTTP/1.1\r\nhost: gvex\r\nconnection: close\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
    assert!(text.contains("\"ingested\":2"), "got: {text}");
    assert!(text.contains("\"batches\":1"), "got: {text}");
    assert_eq!(live_graphs(handle.engine()), (before + 2).min(8));
    handle.shutdown();
}

/// Chunked bodies are only accepted on /ingest (nothing else can parse
/// a body it never read), a garbage line aborts the stream with 400,
/// and GET /ingest is a 405 like the other POST-only endpoints.
#[test]
fn ingest_rejections() {
    let handle = windowed_serve(6, 37, 8);

    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(b"POST /insert HTTP/1.1\r\nhost: gvex\r\ntransfer-encoding: chunked\r\n\r\n")
        .unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 411"), "chunked off /ingest must 411: {text}");
    assert!(text.contains("connection: close"), "must close: {text}");

    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(
        b"POST /ingest HTTP/1.1\r\nhost: gvex\r\ntransfer-encoding: chunked\r\n\r\n\
          9\r\nnot json\n\r\n",
    )
    .unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 400"), "garbage line must 400: {text}");

    let mut c = client(&handle);
    assert_eq!(c.request("GET", "/ingest", None, None).unwrap().status, 405);
    handle.shutdown();
}
