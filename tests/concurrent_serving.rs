//! Concurrent-serving integration tests: the engine is `Send + Sync`
//! with a `&self` API — readers issue queries and take snapshots from
//! many threads while a writer inserts, removes, and (re)builds views —
//! plus regression tests for the panic paths the concurrent redesign
//! closed (stale ids reaching `GraphDb::graph` inside pool workers,
//! the linear/panicking stream-admission reverse lookup).

use gvex_core::{Config, Engine, ViewQuery};
use gvex_data::{mutagenicity, DataConfig, TYPE_C, TYPE_N, TYPE_O};
use gvex_gnn::{AdamTrainer, GcnModel};
use gvex_graph::{GraphDb, GraphId};
use gvex_pattern::Pattern;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn setup(n: usize, seed: u64) -> (GcnModel, GraphDb) {
    let mut db = mutagenicity(DataConfig::new(n, seed));
    let model = GcnModel::new(14, 16, 2, 2, seed);
    AdamTrainer::classify_all(&model, &mut db, &[]);
    (model, db)
}

/// The engine must be shareable across threads as-is: every public
/// method takes `&self`.
#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<Arc<Engine>>();
}

/// The concurrent-serving contract of the tentpole: reader threads keep
/// getting answers (queries and pinned snapshots) while a writer
/// generates views, inserts batches (with incremental maintenance), and
/// removes graphs. The readers hammer the engine for the writer's whole
/// lifetime; the test asserts real overlap — a nonzero number of reads
/// completed before the writer finished — and that every read returned
/// a consistent result.
#[test]
fn queries_are_served_while_views_are_built_and_maintained() {
    let (model, db) = setup(18, 7);
    let pool = mutagenicity(DataConfig::new(8, 99));
    let engine =
        Arc::new(Engine::builder(model, db).config(Config::with_bounds(0, 5)).threads(2).build());
    let base_len = engine.db().len();
    let nitro = Pattern::new(&[TYPE_N, TYPE_O], &[(0, 1, 1)]);
    let writer_done = Arc::new(AtomicBool::new(false));
    let reads_before_writer_done = Arc::new(AtomicUsize::new(0));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let nitro = nitro.clone();
            let writer_done = Arc::clone(&writer_done);
            let overlapped = Arc::clone(&reads_before_writer_done);
            std::thread::spawn(move || {
                let mut reads = 0usize;
                while !writer_done.load(Ordering::Relaxed) || reads == 0 {
                    // Head query: the database only ever grows or shrinks
                    // by committed batches, never shows a half-batch.
                    let all = engine.query(&ViewQuery::new());
                    assert!(all.len() >= base_len.saturating_sub(8));
                    // Pattern query down the memoizing index path.
                    let hits = engine.query(&ViewQuery::pattern(nitro.clone()));
                    assert!(hits.graphs.iter().all(|&id| engine.db().lifetime(id).is_some()));
                    // Snapshot: pin, read consistently, unpin.
                    let snap = engine.snapshot();
                    assert_eq!(snap.query(&ViewQuery::new()).len(), snap.len());
                    // Diagnostics read path.
                    let _ = engine.view_set();
                    reads += 1;
                    if !writer_done.load(Ordering::Relaxed) {
                        overlapped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                reads
            })
        })
        .collect();

    // Writer: full view build, then interleaved batch inserts (each
    // driving parallel per-label incremental maintenance) and removals.
    let vids = engine.explain_all();
    assert!(!vids.is_empty());
    let arrivals: Vec<_> = pool.iter().map(|(id, g)| (g.clone(), Some(pool.truth(id)))).collect();
    let mut inserted: Vec<GraphId> = Vec::new();
    for chunk in arrivals.chunks(3) {
        let (ids, _) = engine.insert_graphs(chunk.to_vec());
        inserted.extend(ids);
    }
    engine.remove_graphs(&inserted[..inserted.len() / 2]);
    writer_done.store(true, Ordering::Relaxed);

    let totals: Vec<usize> =
        readers.into_iter().map(|r| r.join().expect("reader thread")).collect();
    assert!(totals.iter().all(|&n| n > 0), "every reader completed reads: {totals:?}");
    assert!(
        reads_before_writer_done.load(Ordering::Relaxed) > 0,
        "at least some reads overlapped the writer's work"
    );
    // Maintained views stayed coherent under the concurrent load.
    for vid in vids {
        let view = engine.store().get(vid).expect("maintained view");
        let db = engine.db();
        for s in &view.subgraphs {
            assert!(db.get_graph(s.graph_id).is_some(), "maintained view names a live graph");
        }
    }
}

/// Maintained view versions commit at a follow-up epoch, strictly after
/// the mutation batch's epoch: a snapshot pinned at the batch epoch
/// (e.g. taken while maintenance was still streaming the deltas) keeps
/// resolving the pre-maintenance version forever — the repeatable-read
/// half of the snapshot contract.
#[test]
fn maintained_version_commits_after_the_batch_epoch() {
    let (model, db) = setup(16, 21);
    let pool = mutagenicity(DataConfig::new(3, 77));
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 5)).build();
    let labels = engine.db().labels();
    let vids: Vec<_> = labels.iter().map(|&l| engine.stream(l, 1.0)).collect();

    let (aid, g) = pool.iter().next().expect("pool graph");
    let (id, epoch) = engine.insert_graph(g.clone(), Some(pool.truth(aid)));
    let label = engine.db().predicted(id).expect("insert classifies the arrival");
    let vid = vids[labels.iter().position(|&l| l == label).unwrap()];

    // At the batch epoch the pre-maintenance version is still current …
    let at_batch = engine.store().get_at(vid, epoch).expect("version live at the batch epoch");
    assert!(
        at_batch.subgraphs.iter().all(|s| s.graph_id != id),
        "a reader pinned at the batch epoch must not see the maintenance flip"
    );
    // … while the head resolves the maintained version.
    let head = engine.store().get(vid).expect("maintained view");
    assert!(head.subgraphs.iter().any(|s| s.graph_id == id));
    assert!(engine.head() > epoch, "maintenance committed at a follow-up epoch");
}

/// Regression (satellite 1): `explain_subset` / `stream_subset` used to
/// panic inside pool workers when handed a stale, removed, or compacted
/// id (`GraphDb::graph`'s `expect`). They now resolve ids through the
/// non-panicking `try_graphs` path and skip the dead ones.
#[test]
fn explain_subset_skips_stale_removed_and_compacted_ids() {
    let (model, db) = setup(14, 3);
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 5)).build();
    let label = engine.db().labels()[0];
    let ids: Vec<GraphId> = engine.db().label_group(label);
    assert!(ids.len() >= 2, "need a few graphs in the group");

    // Remove one id and compact with no pins: its payload is freed, so
    // the old code path would have panicked dereferencing it.
    let stale = ids[0];
    engine.remove_graphs(&[stale]);
    assert!(engine.db().get_graph(stale).is_none(), "payload compacted away");

    let mut subset = ids.clone();
    subset.push(9999); // never allocated
    let vid = engine.explain_subset(label, &subset);
    let view = engine.store().get(vid).expect("view stored");
    assert!(view.subgraphs.iter().all(|s| s.graph_id != stale && s.graph_id != 9999));

    let svid = engine.stream_subset(label, &subset, 1.0);
    let sview = engine.store().get(svid).expect("stream view stored");
    assert!(sview.subgraphs.iter().all(|s| s.graph_id != stale && s.graph_id != 9999));

    // The context read path degrades to None instead of panicking.
    assert!(engine.context(stale).is_none());
    assert!(engine.context(9999).is_none());
    assert!(engine.context(ids[1]).is_some());
}

/// `GraphDb::try_graphs` is the non-panicking id-resolution helper the
/// batch paths are built on: dead and foreign ids are skipped, order is
/// preserved.
#[test]
fn try_graphs_skips_dead_ids_and_preserves_order() {
    let (_, db) = setup(6, 19);
    let all: Vec<GraphId> = db.iter().map(|(id, _)| id).collect();
    let mut db = db;
    db.advance_epoch();
    db.remove(all[1]);
    db.compact(db.epoch());
    let probe = vec![all[2], 4242, all[1], all[0]];
    let resolved = db.try_graphs(&probe);
    let got: Vec<GraphId> = resolved.iter().map(|&(id, _)| id).collect();
    assert_eq!(got, vec![all[2], all[0]], "dead + foreign ids skipped, input order kept");
}

/// Regression (satellite 2): the stream-admission check used a linear
/// `position(..).expect(..)` over the induced map. The reverse lookup is
/// now a binary search that treats absence as "not covered" instead of
/// panicking. Force the case-(b) admission path (full cache, low
/// evidence) on a graph large enough to overflow a tiny cache and check
/// the stream still completes with the same canonical output shape.
#[test]
fn stream_admission_with_full_cache_does_not_panic() {
    use gvex_core::StreamGvex;
    let mut db = GraphDb::new();
    // A chain of alternating atom types: plenty of arrivals competing
    // for a 2-slot cache, so the covered/uncovered admission check runs
    // for nearly every node.
    let mut g = gvex_graph::Graph::new(14);
    let types = [TYPE_C, TYPE_N, TYPE_O, TYPE_C, TYPE_N, TYPE_O, TYPE_C, TYPE_C];
    let mut feat = vec![0.0; 14];
    for (i, &t) in types.iter().enumerate() {
        feat.fill(0.0);
        feat[t as usize] = 1.0;
        g.add_node(t, &feat);
        if i > 0 {
            g.add_edge(i as u32 - 1, i as u32, 0);
        }
    }
    let id = db.push(g.clone(), 0);
    let model = GcnModel::new(14, 8, 2, 2, 5);
    AdamTrainer::classify_all(&model, &mut db, &[]);
    let sg = StreamGvex::new(Config::with_bounds(1, 2));
    let out = sg.stream_graph(&model, &g, id, db.predicted(id).unwrap(), None, 1.0);
    let (sub, _) = out.expect("stream produced a subgraph");
    assert!(!sub.nodes.is_empty() && sub.nodes.len() <= 2, "cache bound respected");
    assert!(sub.nodes.windows(2).all(|w| w[0] < w[1]), "canonical sorted node set");
}

/// Satellite 3: pool construction falls back instead of aborting, and
/// the engine-owned pool is reported through the builder's knob.
#[test]
fn explainer_pool_and_engine_threads_knob() {
    let pool = gvex_core::parallel::explainer_pool(3);
    assert_eq!(pool.map(|p| p.current_num_threads()), Some(3));
    let (model, db) = setup(6, 2);
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 4)).threads(2).build();
    assert_eq!(engine.pool_width(), 2);
}

/// Byte-identical results: `explain_all`'s label fan-out on the engine
/// pool must produce exactly the views the sequential per-label loop
/// produces (canonical graph-id-sorted shape, same patterns, same
/// scores).
#[test]
fn parallel_explain_all_matches_sequential_label_loop() {
    let (model, db) = setup(14, 31);
    let par = Engine::builder(model.clone(), db.clone())
        .config(Config::with_bounds(0, 5))
        .threads(4)
        .build();
    let seq = Engine::builder(model, db).config(Config::with_bounds(0, 5)).threads(1).build();
    let par_vids = par.explain_all();
    // Bind the label list in its own statement: a `db()` guard temporary
    // alive in the same statement as a write call would deadlock (see
    // the `DbGuard` docs).
    let seq_labels = seq.db().labels();
    let seq_vids: Vec<_> = seq_labels.iter().map(|&l| seq.explain_label(l)).collect();
    assert_eq!(par_vids.len(), seq_vids.len());
    for (&pv, &sv) in par_vids.iter().zip(&seq_vids) {
        let a = par.store().get(pv).expect("parallel view");
        let b = seq.store().get(sv).expect("sequential view");
        assert_eq!(a.label, b.label);
        let shape = |v: &gvex_core::ExplanationView| {
            v.subgraphs
                .iter()
                .map(|s| (s.graph_id, s.nodes.clone(), s.consistent, s.counterfactual))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&a), shape(&b), "label {} views diverged", a.label);
        assert_eq!(a.patterns.len(), b.patterns.len());
        assert!((a.explainability - b.explainability).abs() < 1e-12);
        assert!((a.edge_loss - b.edge_loss).abs() < 1e-12);
    }
}
