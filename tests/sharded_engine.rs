//! Sharded-engine integration tests: the shard-bit id scheme, the
//! label-group router behind the unchanged `Engine` API, non-panicking
//! handling of malformed / foreign ids, cross-shard snapshot
//! consistency at the watermark, concurrent writers on disjoint
//! shards, and a property test that sharded engines (N ∈ {1, 2, 4})
//! answer every query and `explain_label` identically to the unsharded
//! reference over random insert/remove sequences.
//!
//! Graph ids are not comparable across shard counts (the shard bits
//! differ), so identity is checked through the *arrival ordinal*: the
//! k-th graph ever inserted is the same graph in every engine, and a
//! result set is canonicalized by mapping each id back to its ordinal.

use gvex_core::{Config, Engine, Snapshot, ViewId, ViewQuery};
use gvex_data::malnet_scale;
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};
use gvex_graph::{shard, ClassLabel, Graph, GraphDb, GraphId};
use gvex_pattern::Pattern;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Canonical shape of one explanation subgraph, keyed by arrival
/// ordinal so shapes compare across engines with different id spaces.
type SubgraphShape = (usize, Vec<u32>, bool, bool);

/// A call-graph classifier trained once and shared by every test:
/// arrivals are routed by *predicted* family, so routing only spreads
/// across shards when the model actually discriminates.
fn routed_model() -> GcnModel {
    static MODEL: OnceLock<GcnModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let db = malnet_scale(60, 7);
            let feat = db.iter().next().map(|(_, g)| g.feature_dim()).unwrap_or(1);
            let mut m = GcnModel::new(feat, 8, 5, 2, 7);
            let ids: Vec<GraphId> = db.iter().map(|(id, _)| id).collect();
            let cfg = TrainConfig { epochs: 40, target_accuracy: 0.95, ..TrainConfig::default() };
            AdamTrainer::new(&m, cfg).fit(&mut m, &db, &ids);
            m
        })
        .clone()
}

/// A seed database with a perfect classifier stand-in (predicted :=
/// truth), so every truth-label group is routed to exactly one shard.
fn perfect_db(n: usize, seed: u64) -> GraphDb {
    let mut db = malnet_scale(n, seed);
    let ids: Vec<GraphId> = db.iter().map(|(id, _)| id).collect();
    for id in ids {
        let truth = db.truth(id);
        db.set_predicted(id, truth);
    }
    db
}

fn sharded(model: GcnModel, db: GraphDb, n: usize) -> Engine {
    Engine::builder(model, db).config(Config::with_bounds(0, 4)).shards(n).build()
}

/// Sorted arrival ordinals of a result set, given the per-engine
/// `ids_by_arrival` mapping (ordinal → id).
fn ordinals(ids_by_arrival: &[GraphId], result: &[GraphId]) -> Vec<usize> {
    let inv: HashMap<GraphId, usize> =
        ids_by_arrival.iter().enumerate().map(|(o, &id)| (id, o)).collect();
    let mut ords: Vec<usize> =
        result.iter().map(|id| *inv.get(id).expect("result id was inserted")).collect();
    ords.sort_unstable();
    ords
}

/// The family-1 mutual-recursion ring motif (see the MalNet simulator).
fn ring6() -> Pattern {
    Pattern::new(&[0; 6], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0), (4, 5, 0), (5, 0, 0)])
}

/// A short call chain, present in most call trees regardless of family.
fn chain4() -> Pattern {
    Pattern::new(&[0; 4], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)])
}

#[test]
fn shard_id_scheme_roundtrips_and_keeps_shard0_ids_raw() {
    for &(s, slot) in &[(0u32, 0u32), (0, 7), (1, 0), (5, 123_456), (63, shard::SLOT_MASK)] {
        let id = shard::compose(s, slot);
        assert_eq!(shard::of(id), s, "shard bits survive composition");
        assert_eq!(shard::slot(id), slot, "slot bits survive composition");
    }
    // Shard-0 ids are numerically identical to unsharded ids, so a
    // default engine's handles look exactly like they did before
    // sharding existed.
    assert_eq!(shard::compose(0, 42), 42);
    assert_eq!(shard::MAX, 1 << shard::BITS);
}

/// With predicted == truth, each truth-label group lives wholly in one
/// shard: a label-filtered query touches exactly its owning shard (the
/// probe counter proves it) while an unconstrained query fans out to
/// every shard — and both return complete answers.
#[test]
fn label_filtered_queries_touch_only_the_owning_shard() {
    let db = perfect_db(40, 9);
    let expected: Vec<usize> = (0..5u16).map(|l| db.label_group_truth(l).len()).collect();
    let total = db.len();
    let engine = sharded(routed_model(), db, 4);
    for l in 0..5u16 {
        let before = engine.shard_probes();
        let r = engine.query(&ViewQuery::new().label(l));
        assert_eq!(engine.shard_probes() - before, 1, "label {l} query touched one shard");
        assert_eq!(r.len(), expected[l as usize], "label {l} answer is complete");
    }
    let before = engine.shard_probes();
    let r = engine.query(&ViewQuery::new());
    assert_eq!(engine.shard_probes() - before, 4, "unconstrained query fans out");
    assert_eq!(r.len(), total);
    // All ids carry in-range shard bits.
    assert!(r.graphs.iter().all(|&id| (shard::of(id) as usize) < engine.num_shards()));
}

/// Malformed ids — shard bits past the engine's shard count, or valid
/// shard bits with a bogus slot — are refused with `None` / skipped,
/// never panicked on, at every routing boundary.
#[test]
fn malformed_and_foreign_ids_are_refused_not_panicked() {
    let db = perfect_db(20, 11);
    let total = db.len();
    let engine = sharded(routed_model(), db, 2);
    let foreign = shard::compose(7, 3); // shard 7 of a 2-shard engine
    let extreme = shard::compose(63, shard::SLOT_MASK);
    let bogus_slot = shard::compose(1, 999_999); // real shard, no such slot

    assert!(engine.view(ViewId(foreign)).is_none());
    assert!(engine.view(ViewId(extreme)).is_none());
    assert!(engine.context(foreign).is_none());
    assert!(engine.context(bogus_slot).is_none());

    // Removal skips every malformed id without touching live state.
    engine.remove_graphs(&[foreign, extreme, bogus_slot]);
    assert_eq!(engine.query(&ViewQuery::new()).len(), total);

    // The shard-local database refuses foreign ids too.
    {
        let d = engine.db(); // shard 0
        assert!(!d.contains(foreign));
        assert!(d.get_graph(foreign).is_none());
        assert!(d.lifetime(foreign).is_none());
        assert!(d.predicted(foreign).is_none());
        assert!(d.try_graphs(&[foreign, extreme]).is_empty());
    }

    // Snapshots route malformed handles to None / empty as well.
    let snap = engine.snapshot();
    assert!(snap.view(ViewId(foreign)).is_none());
    assert!(snap.view_hits(&chain4(), ViewId(extreme)).is_empty());

    // A query constrained to foreign views selects no shard: empty, not
    // unconstrained.
    let r = engine.query(&ViewQuery::new().in_views([ViewId(foreign), ViewId(extreme)]));
    assert_eq!(r.len(), 0);
}

/// Two writer threads whose arrival streams route to disjoint shards
/// insert concurrently; every returned id is distinct and resolvable,
/// and removing them restores the seed state.
#[test]
fn independent_shard_writers_insert_concurrently() {
    let model = routed_model();
    let engine = Arc::new(sharded(model.clone(), perfect_db(30, 13), 2));
    let base = engine.query(&ViewQuery::new()).len();
    let pool: Vec<Graph> = malnet_scale(40, 888).iter().map(|(_, g)| g.clone()).collect();
    let mut bins: Vec<Vec<Graph>> = vec![Vec::new(), Vec::new()];
    for g in pool {
        let s = (model.predict(&g) as usize) % 2;
        bins[s].push(g);
    }
    let total: usize = bins.iter().map(Vec::len).sum();

    let ids: Vec<GraphId> = std::thread::scope(|scope| {
        let engine = &engine;
        let handles: Vec<_> = bins
            .iter()
            .map(|bin| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for chunk in bin.chunks(3) {
                        let batch: Vec<_> = chunk.iter().map(|g| (g.clone(), None)).collect();
                        out.extend(engine.insert_graphs(batch).0);
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("writer thread")).collect()
    });

    assert_eq!(ids.len(), total);
    assert_eq!(ids.iter().collect::<BTreeSet<_>>().len(), total, "ids are distinct");
    assert_eq!(engine.query(&ViewQuery::new()).len(), base + total);
    for &id in &ids {
        assert!(engine.context(id).is_some(), "inserted id resolves");
    }
    engine.remove_graphs(&ids);
    assert_eq!(engine.query(&ViewQuery::new()).len(), base);
}

/// Snapshots pin a cross-shard watermark: while a writer commits
/// batches that split across both shards, every snapshot sees a whole
/// number of batches (never a half-batch missing its other shard's
/// rows) and keeps answering that frozen state after the writer moves
/// on.
#[test]
fn snapshots_pin_cross_shard_batch_atomic_frontiers() {
    let engine = Arc::new(sharded(routed_model(), perfect_db(20, 3), 2));
    let base = engine.snapshot().len();
    let pool: Vec<Graph> = malnet_scale(24, 555).iter().map(|(_, g)| g.clone()).collect();
    let batch_size = 4usize;
    let inserted = pool.len();
    let done = Arc::new(AtomicBool::new(false));

    let frozen = engine.snapshot();
    let frozen_ords = frozen.query(&ViewQuery::new()).graphs;

    std::thread::scope(|scope| {
        {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for chunk in pool.chunks(batch_size) {
                    let batch: Vec<_> = chunk.iter().map(|g| (g.clone(), None)).collect();
                    engine.insert_graphs(batch);
                }
                done.store(true, Ordering::Relaxed);
            });
        }
        while !done.load(Ordering::Relaxed) {
            let snap = engine.snapshot();
            let grown = snap.len() - base;
            assert_eq!(grown % batch_size, 0, "snapshot caught a half-committed batch");
            assert_eq!(snap.query(&ViewQuery::new()).len(), snap.len());
        }
    });

    assert_eq!(engine.snapshot().len(), base + inserted);
    // The pre-writer snapshot still answers its pinned state verbatim.
    assert_eq!(frozen.len(), base);
    assert_eq!(frozen.query(&ViewQuery::new()).graphs, frozen_ords);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Sharded engines are observationally identical to the unsharded
    /// reference: over a random insert/remove sequence (with truth
    /// labels that may disagree with the routed prediction, and with a
    /// malformed id slipped into every removal), every `ViewQuery`
    /// flavor, `explain_label`, and a snapshot pinned before the final
    /// mutation agree across N ∈ {1, 2, 4} once ids are canonicalized
    /// to arrival ordinals.
    #[test]
    fn sharded_engines_answer_identically_to_unsharded(seed in 0u64..16) {
        let model = routed_model();
        let pdb = malnet_scale(36, 9_000 + seed);
        let pool: Vec<(Graph, ClassLabel)> =
            pdb.iter().map(|(id, g)| (g.clone(), pdb.truth(id))).collect();
        let engines: Vec<Engine> = [1usize, 2, 4]
            .iter()
            .map(|&n| sharded(model.clone(), GraphDb::new(), n))
            .collect();
        let mut arrivals: Vec<Vec<GraphId>> = vec![Vec::new(); engines.len()];
        let mut live: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = [
            ViewQuery::new(),
            ViewQuery::new().label(0),
            ViewQuery::new().label(3),
            ViewQuery::pattern(ring6()),
            ViewQuery::pattern(chain4()).label(1),
        ];

        for _round in 0..4 {
            // Insert the same batch (graph + truth) into every engine.
            let take = (3 + rng.gen_range(0..4usize)).min(pool.len() - next);
            if take > 0 {
                let batch: Vec<(Graph, Option<ClassLabel>)> =
                    pool[next..next + take].iter().map(|(g, t)| (g.clone(), Some(*t))).collect();
                for (e, ids) in engines.iter().zip(arrivals.iter_mut()) {
                    let (new_ids, _) = e.insert_graphs(batch.clone());
                    prop_assert_eq!(new_ids.len(), take);
                    ids.extend(new_ids);
                }
                live.extend(next..next + take);
                next += take;
            }
            // Remove the same ordinals everywhere (plus one malformed id,
            // which every engine must skip).
            if live.len() > 2 && rng.gen_bool(0.6) {
                let k = 1 + rng.gen_range(0..2);
                let mut gone = Vec::new();
                for _ in 0..k {
                    let i = rng.gen_range(0..live.len());
                    gone.push(live.swap_remove(i));
                }
                for (e, ids) in engines.iter().zip(&arrivals) {
                    let mut rm: Vec<GraphId> = gone.iter().map(|&o| ids[o]).collect();
                    rm.push(shard::compose(9, 77));
                    e.remove_graphs(&rm);
                }
            }
            // Every query flavor agrees with the unsharded reference.
            for q in &queries {
                let r0 = engines[0].query(q);
                let o0 = ordinals(&arrivals[0], &r0.graphs);
                for (e, ids) in engines.iter().zip(&arrivals).skip(1) {
                    let r = e.query(q);
                    prop_assert_eq!(&ordinals(ids, &r.graphs), &o0);
                    prop_assert_eq!(&r.per_label, &r0.per_label);
                }
            }
        }

        // explain_label on the most common live predicted family: the
        // per-graph explanation shapes must be identical across shard
        // counts (keyed by arrival ordinal, since ids differ).
        let mut counts: HashMap<ClassLabel, usize> = HashMap::new();
        for &o in &live {
            *counts.entry(model.predict(&pool[o].0)).or_insert(0) += 1;
        }
        let (&label, _) = counts.iter().max_by_key(|&(_, c)| *c).expect("live graphs remain");
        let shapes: Vec<BTreeSet<SubgraphShape>> = engines
            .iter()
            .zip(&arrivals)
            .map(|(e, ids)| {
                let inv: HashMap<GraphId, usize> =
                    ids.iter().enumerate().map(|(o, &id)| (id, o)).collect();
                let v = e.view(e.explain_label(label)).expect("freshly built view");
                v.subgraphs
                    .iter()
                    .map(|s| (inv[&s.graph_id], s.nodes.clone(), s.consistent, s.counterfactual))
                    .collect()
            })
            .collect();
        prop_assert_eq!(&shapes[1], &shapes[0]);
        prop_assert_eq!(&shapes[2], &shapes[0]);

        // A snapshot pinned at the current watermark keeps answering it
        // after further inserts land — identically across shard counts.
        let snaps: Vec<Snapshot> = engines.iter().map(|e| e.snapshot()).collect();
        let pinned0 = ordinals(&arrivals[0], &snaps[0].query(&ViewQuery::new()).graphs);
        let take = 3.min(pool.len() - next);
        let batch: Vec<(Graph, Option<ClassLabel>)> =
            pool[next..next + take].iter().map(|(g, t)| (g.clone(), Some(*t))).collect();
        for (e, ids) in engines.iter().zip(arrivals.iter_mut()) {
            ids.extend(e.insert_graphs(batch.clone()).0);
        }
        for ((snap, e), ids) in snaps.iter().zip(&engines).zip(&arrivals) {
            prop_assert_eq!(&ordinals(ids, &snap.query(&ViewQuery::new()).graphs), &pinned0);
            prop_assert_eq!(e.query(&ViewQuery::new()).len(), pinned0.len() + take);
        }
    }
}
