//! Durable-engine integration tests: WAL + checkpoint round trips
//! through recovery, torn-tail and partial-batch crash tolerance, the
//! corrupt-directory refusals, and a property test that for random
//! op sequences with a crash injected between arbitrary WAL records,
//! `recover(checkpoint + logs)` is observationally identical to an
//! engine that never crashed — same head epoch, same live graphs and
//! per-label counts, same view contents, and same historical versions
//! at pinned epochs.
//!
//! Ops here are sequential, so recovery reproduces every epoch (and
//! every allocated id) *exactly* — the tests exploit that and compare
//! ids directly rather than through arrival ordinals.

use gvex_core::{Config, Engine, FsyncPolicy, StoreError, ViewQuery};
use gvex_data::malnet_scale;
use gvex_gnn::GcnModel;
use gvex_graph::{ClassLabel, Epoch, Graph, GraphDb, GraphId};
use gvex_store::{read_wal, truncate_wal, wal_path};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch directory under the system temp dir, unique per
/// test invocation (pid + counter), removed by [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gvex-durable-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Untrained model — determinism is all the durability layer needs,
/// and both sides of every comparison clone the same instance.
fn model_for(db: &GraphDb) -> GcnModel {
    let feat = db.iter().next().map(|(_, g)| g.feature_dim()).unwrap_or(1);
    GcnModel::new(feat, 8, 5, 2, 7)
}

/// A classifier that actually discriminates families, so arrivals
/// spread across shards (the cross-shard batch test needs routing to
/// reach both shards). Trained once, shared.
fn routed_model() -> GcnModel {
    static MODEL: std::sync::OnceLock<GcnModel> = std::sync::OnceLock::new();
    MODEL
        .get_or_init(|| {
            use gvex_gnn::{AdamTrainer, TrainConfig};
            let db = malnet_scale(60, 7);
            let feat = db.iter().next().map(|(_, g)| g.feature_dim()).unwrap_or(1);
            let mut m = GcnModel::new(feat, 8, 5, 2, 7);
            let ids: Vec<GraphId> = db.iter().map(|(id, _)| id).collect();
            let cfg = TrainConfig { epochs: 40, target_accuracy: 0.95, ..TrainConfig::default() };
            AdamTrainer::new(&m, cfg).fit(&mut m, &db, &ids);
            m
        })
        .clone()
}

fn cfg() -> Config {
    Config::with_bounds(0, 4)
}

/// One logged engine op, replayable against any engine. `Insert` and
/// `Remove` index into the shared arrival pool / id list so the same
/// script drives the durable engine and the in-memory reference.
#[derive(Debug, Clone)]
enum Op {
    /// Insert these pool graphs as one batch.
    Insert(Vec<usize>),
    /// Remove the ids of these arrival ordinals (stale ones included —
    /// double removes exercise the skip-and-log path).
    Remove(Vec<usize>),
    Explain(ClassLabel),
    Stream(ClassLabel),
}

/// Applies `op`, extending `ids` with any new arrivals.
fn apply(engine: &Engine, op: &Op, pool: &[Graph], ids: &mut Vec<GraphId>) {
    match op {
        Op::Insert(picks) => {
            let batch: Vec<_> = picks.iter().map(|&i| (pool[i].clone(), None)).collect();
            ids.extend(engine.insert_graphs(batch).0);
        }
        Op::Remove(ordinals) => {
            let victims: Vec<GraphId> =
                ordinals.iter().filter_map(|&o| ids.get(o).copied()).collect();
            if !victims.is_empty() {
                engine.remove_graphs(&victims);
            }
        }
        Op::Explain(l) => {
            engine.explain_label(*l);
        }
        Op::Stream(l) => {
            engine.stream(*l, 0.8);
        }
    }
}

/// Canonical value of one explanation view (field-by-field, with float
/// bits — sequential replay must reproduce views exactly).
type ViewCanon = (
    ClassLabel,
    Vec<(GraphId, Vec<u32>, bool, bool, u64)>,
    Vec<(Vec<u16>, Vec<(u32, u32, u16)>)>,
    u64,
    u64,
);

fn canon_view(v: &gvex_core::ExplanationView) -> ViewCanon {
    let subs = v
        .subgraphs
        .iter()
        .map(|s| (s.graph_id, s.nodes.clone(), s.consistent, s.counterfactual, s.score.to_bits()))
        .collect();
    let pats = v
        .patterns
        .iter()
        .map(|p| {
            let types: Vec<u16> = (0..p.num_nodes() as u32).map(|n| p.node_type(n)).collect();
            let mut edges: Vec<(u32, u32, u16)> = p.edges().collect();
            edges.sort_unstable();
            (types, edges)
        })
        .collect();
    (v.label, subs, pats, v.explainability.to_bits(), v.edge_loss.to_bits())
}

/// Asserts `a` and `b` answer identically: head epoch, full result
/// set, per-label counts, and every current view.
fn assert_identical(a: &Engine, b: &Engine, labels: ClassLabel) {
    assert_eq!(a.head(), b.head(), "head epoch");
    let (ra, rb) = (a.query(&ViewQuery::new()), b.query(&ViewQuery::new()));
    assert_eq!(ra.graphs, rb.graphs, "live graph ids");
    assert_eq!(ra.per_label, rb.per_label, "per-label counts");
    for l in 0..labels {
        assert_eq!(
            a.query(&ViewQuery::new().label(l)).graphs,
            b.query(&ViewQuery::new().label(l)).graphs,
            "label {l} result"
        );
    }
    let (va, vb) = (a.view_set(), b.view_set());
    let ca: Vec<ViewCanon> = va.views.iter().map(canon_view).collect();
    let cb: Vec<ViewCanon> = vb.views.iter().map(canon_view).collect();
    assert_eq!(ca, cb, "current view versions");
}

#[test]
fn fresh_directory_round_trips_through_recovery() {
    let scratch = Scratch::new("roundtrip");
    let db = malnet_scale(20, 41);
    let model = model_for(&db);
    let pool: Vec<Graph> = malnet_scale(12, 99).iter().map(|(_, g)| g.clone()).collect();
    let ops = vec![
        Op::Explain(1),
        Op::Insert(vec![0, 1, 2]),
        Op::Stream(2),
        Op::Insert(vec![3, 4]),
        Op::Remove(vec![0, 1]),
        Op::Remove(vec![0]), // stale double-remove
        Op::Insert(vec![5, 6, 7]),
    ];

    let reference = Engine::builder(model.clone(), db.clone()).config(cfg()).build();
    let durable = Engine::builder(model.clone(), db.clone())
        .config(cfg())
        .durable(scratch.path())
        .fsync(FsyncPolicy::Always)
        .build();
    assert!(durable.is_durable() && !reference.is_durable());
    assert!(durable.recovery_report().is_none(), "fresh directory: nothing recovered");

    let (mut ids_a, mut ids_b) = (Vec::new(), Vec::new());
    for op in &ops {
        apply(&reference, op, &pool, &mut ids_a);
        apply(&durable, op, &pool, &mut ids_b);
    }
    assert_eq!(ids_a, ids_b, "sequential id allocation is reproducible");
    assert_eq!(durable.durable_ops(), Some(ops.len() as u64));
    drop(durable);

    // Recover over an *empty* seed — the directory is authoritative.
    let recovered =
        Engine::builder(model, GraphDb::new()).config(cfg()).durable(scratch.path()).build();
    let report = recovered.recovery_report().expect("directory was recovered");
    assert_eq!(report.ops_replayed, ops.len() as u64, "every logged op replayed");
    assert_eq!(report.batches_discarded, 0);
    assert_eq!(report.bytes_truncated, 0);
    assert_eq!(recovered.durable_ops(), Some(ops.len() as u64), "op sequence resumes");
    assert_identical(&recovered, &reference, 5);

    // Historical versions survive too: shard 0's store still answers
    // pinned-epoch reads identically.
    for vid in [gvex_core::ViewId(0), gvex_core::ViewId(1)] {
        assert_eq!(
            recovered.store().version_count(vid),
            reference.store().version_count(vid),
            "version chain length of {vid:?}"
        );
        for e in 0..recovered.head().0 + 1 {
            let (x, y) =
                (recovered.store().get_at(vid, Epoch(e)), reference.store().get_at(vid, Epoch(e)));
            assert_eq!(x.is_some(), y.is_some(), "liveness of {vid:?} at epoch {e}");
            if let (Some(x), Some(y)) = (x, y) {
                assert_eq!(canon_view(&x), canon_view(&y), "{vid:?} at epoch {e}");
            }
        }
    }

    // And the recovered engine keeps going: a further op logs at the
    // next ordinal and round-trips again.
    apply(&recovered, &Op::Insert(vec![8]), &pool, &mut ids_b);
    assert_eq!(recovered.durable_ops(), Some(ops.len() as u64 + 1));
}

#[test]
fn checkpoint_resets_logs_and_recovery_starts_from_the_image() {
    let scratch = Scratch::new("checkpoint");
    let db = malnet_scale(16, 7);
    let model = model_for(&db);
    let pool: Vec<Graph> = malnet_scale(8, 123).iter().map(|(_, g)| g.clone()).collect();

    let reference = Engine::builder(model.clone(), db.clone()).config(cfg()).build();
    let durable =
        Engine::builder(model.clone(), db.clone()).config(cfg()).durable(scratch.path()).build();
    let (mut ids_a, mut ids_b) = (Vec::new(), Vec::new());
    let pre = [Op::Explain(0), Op::Insert(vec![0, 1])];
    let post = [Op::Insert(vec![2, 3]), Op::Remove(vec![0]), Op::Stream(1)];
    for op in &pre {
        apply(&reference, op, &pool, &mut ids_a);
        apply(&durable, op, &pool, &mut ids_b);
    }
    durable.checkpoint().expect("manual checkpoint");
    for s in 0..durable.num_shards() {
        let len = std::fs::metadata(wal_path(scratch.path(), s)).map(|m| m.len()).unwrap_or(0);
        assert_eq!(len, 0, "checkpoint resets shard {s}'s log");
    }
    for op in &post {
        apply(&reference, op, &pool, &mut ids_a);
        apply(&durable, op, &pool, &mut ids_b);
    }
    drop(durable);

    let recovered =
        Engine::builder(model, GraphDb::new()).config(cfg()).durable(scratch.path()).build();
    let report = recovered.recovery_report().expect("recovered");
    assert_eq!(report.checkpoint_ops, pre.len() as u64, "image held the pre-checkpoint ops");
    assert_eq!(report.ops_replayed, post.len() as u64, "only post-checkpoint ops replayed");
    assert_eq!(recovered.durable_ops(), Some((pre.len() + post.len()) as u64));
    assert_identical(&recovered, &reference, 5);
}

#[test]
fn automatic_checkpoints_fire_on_the_configured_cadence() {
    let scratch = Scratch::new("auto");
    let db = malnet_scale(10, 3);
    let model = model_for(&db);
    let pool: Vec<Graph> = malnet_scale(8, 5).iter().map(|(_, g)| g.clone()).collect();
    let durable = Engine::builder(model.clone(), db.clone())
        .config(cfg())
        .durable(scratch.path())
        .checkpoint_every(2)
        .build();
    let mut ids = Vec::new();
    for i in 0..6 {
        apply(&durable, &Op::Insert(vec![i]), &pool, &mut ids);
    }
    // Six ops at cadence 2: the logs were reset at least twice, so far
    // fewer than six records remain.
    let mut remaining = 0;
    for s in 0..durable.num_shards() {
        remaining += read_wal(&wal_path(scratch.path(), s)).expect("readable log").0.len();
    }
    assert!(remaining <= 2, "auto-checkpoint kept the logs short (found {remaining} records)");
    drop(durable);
    let recovered = Engine::builder(model.clone(), GraphDb::new())
        .config(cfg())
        .durable(scratch.path())
        .build();
    let reference = Engine::builder(model, db).config(cfg()).build();
    let mut ids_r = Vec::new();
    for i in 0..6 {
        apply(&reference, &Op::Insert(vec![i]), &pool, &mut ids_r);
    }
    assert_identical(&recovered, &reference, 5);
}

#[test]
fn wal_bytes_without_a_checkpoint_are_refused() {
    let scratch = Scratch::new("orphan-wal");
    std::fs::write(wal_path(scratch.path(), 0), b"orphaned bytes").expect("write");
    let db = malnet_scale(6, 2);
    let err = Engine::builder(model_for(&db), db)
        .config(cfg())
        .durable(scratch.path())
        .try_build()
        .expect_err("orphaned WAL bytes must refuse to build");
    assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
}

#[test]
fn torn_tail_is_truncated_and_the_prefix_recovers() {
    let scratch = Scratch::new("torn");
    let db = malnet_scale(12, 19);
    let model = model_for(&db);
    let pool: Vec<Graph> = malnet_scale(6, 77).iter().map(|(_, g)| g.clone()).collect();
    let durable =
        Engine::builder(model.clone(), db.clone()).config(cfg()).durable(scratch.path()).build();
    let mut ids = Vec::new();
    for op in [Op::Insert(vec![0, 1]), Op::Insert(vec![2]), Op::Insert(vec![3, 4])] {
        apply(&durable, &op, &pool, &mut ids);
    }
    drop(durable);

    // Tear the last record: keep its frame header plus one payload
    // byte. `read_wal` stops there; recovery truncates the tail.
    let wal = wal_path(scratch.path(), 0);
    let (segments, valid, _) = read_wal(&wal).expect("intact log");
    assert_eq!(segments.len(), 3);
    let torn_at = segments[2].offset + 9;
    truncate_wal(&wal, torn_at).expect("tear the tail");

    let recovered = Engine::builder(model.clone(), GraphDb::new())
        .config(cfg())
        .durable(scratch.path())
        .build();
    let report = recovered.recovery_report().expect("recovered");
    assert_eq!(report.ops_replayed, 2, "the two intact batches replay");
    assert_eq!(report.bytes_truncated, torn_at - segments[2].offset, "the torn tail is dropped");
    assert!(valid > segments[2].offset, "sanity: the full log was longer");

    let reference = Engine::builder(model, db).config(cfg()).build();
    let mut ids_r = Vec::new();
    for op in [Op::Insert(vec![0, 1]), Op::Insert(vec![2])] {
        apply(&reference, &op, &pool, &mut ids_r);
    }
    assert_identical(&recovered, &reference, 5);
}

/// A crash between the per-shard appends of one cross-shard insert
/// batch leaves some participants logged and others not: recovery must
/// discard the whole batch (batch-whole-or-not-at-all) and truncate
/// every surviving piece.
#[test]
fn partial_cross_shard_batches_are_discarded_whole() {
    let scratch = Scratch::new("partial-batch");
    let db = malnet_scale(14, 21);
    let model = routed_model();
    // Split an arrival pool by predicted route so one insert batch
    // provably spans both shards of a 2-shard engine.
    let (mut route0, mut route1) = (Vec::new(), Vec::new());
    for s in 0..10u64 {
        for (_, g) in malnet_scale(30, 300 + s).iter() {
            match (model.predict(g) as usize) % 2 {
                0 => route0.push(g.clone()),
                _ => route1.push(g.clone()),
            }
        }
        if !route0.is_empty() && !route1.is_empty() {
            break;
        }
    }
    assert!(
        !route0.is_empty() && !route1.is_empty(),
        "need arrivals routed to both shards to exercise a cross-shard batch"
    );
    let pool = vec![route0[0].clone(), route1[0].clone()];
    let ops = vec![
        Op::Insert(vec![0]),
        Op::Explain(0),
        Op::Insert(vec![0, 1]), /* spans both shards */
    ];

    let build = |db: GraphDb, dir: Option<&Path>| {
        let mut b = Engine::builder(model.clone(), db).config(cfg()).shards(2);
        if let Some(d) = dir {
            b = b.durable(d).fsync(FsyncPolicy::Never);
        }
        b.build()
    };
    let durable = build(db.clone(), Some(scratch.path()));
    let mut ids = Vec::new();
    for op in &ops {
        apply(&durable, op, &pool, &mut ids);
    }
    let last_batch = durable.durable_ops().expect("durable") - 1;
    drop(durable);

    // Erase shard 1's piece of the final batch — the crash landed
    // after shard 0's append, before shard 1's.
    let wal1 = wal_path(scratch.path(), 1);
    let (segments, _, _) = read_wal(&wal1).expect("intact log");
    let piece = segments
        .iter()
        .find(|s| s.record.batch == last_batch)
        .expect("the final batch logged to shard 1");
    assert_eq!(piece.record.participants, vec![0, 1], "the final batch spans both shards");
    truncate_wal(&wal1, piece.offset).expect("crash shard 1 mid-batch");

    let recovered = build(GraphDb::new(), Some(scratch.path()));
    let report = recovered.recovery_report().expect("recovered");
    assert_eq!(report.batches_discarded, 1, "the split batch is discarded whole");
    assert!(report.bytes_truncated > 0, "shard 0's orphaned piece is truncated");
    assert_eq!(report.ops_replayed, last_batch, "everything before the split batch replays");

    let reference = build(db, None);
    let mut ids_r = Vec::new();
    for op in &ops[..ops.len() - 1] {
        apply(&reference, op, &pool, &mut ids_r);
    }
    assert_identical(&recovered, &reference, 5);
}

/// Reference epochs/ids for the proptest: the engine that never
/// crashed, advanced through the first `k` ops.
fn reference_after(model: &GcnModel, db: &GraphDb, ops: &[Op], k: usize, pool: &[Graph]) -> Engine {
    let e = Engine::builder(model.clone(), db.clone()).config(cfg()).build();
    let mut ids = Vec::new();
    for op in &ops[..k] {
        apply(&e, op, pool, &mut ids);
    }
    e
}

/// Samples a random op script (the shim's `proptest!` only supports
/// numeric-range strategies, so ops derive from a seeded RNG).
fn random_ops(rng: &mut StdRng) -> Vec<Op> {
    let n = rng.gen_range(2..7usize);
    (0..n)
        .map(|_| match rng.gen_range(0..7u8) {
            0..=2 => {
                Op::Insert((0..rng.gen_range(1..=3usize)).map(|_| rng.gen_range(0..10)).collect())
            }
            3..=4 => {
                Op::Remove((0..rng.gen_range(1..=2usize)).map(|_| rng.gen_range(0..12)).collect())
            }
            5 => Op::Explain(rng.gen_range(0..5u16)),
            _ => Op::Stream(rng.gen_range(0..5u16)),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For a random op sequence, crash the log at a random batch
    /// boundary — optionally leaving one shard's record of the cut
    /// batch behind (the mid-cross-shard-append crash) — and recover:
    /// the result must equal a never-crashed engine that executed
    /// exactly the surviving prefix.
    #[test]
    fn recovery_equals_the_never_crashed_prefix(
        crash_at in 0usize..7,
        partial in 0u8..2,
        seed in 1u64..500,
    ) {
        let partial = partial == 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = random_ops(&mut rng);
        let scratch = Scratch::new("prop");
        let db = malnet_scale(10, seed);
        let model = model_for(&db);
        let pool: Vec<Graph> = malnet_scale(10, seed + 1000).iter().map(|(_, g)| g.clone()).collect();

        // Run the full script durably (fast fsync policy), then crash
        // by editing the logs the way a kill at batch `k` would have
        // left them.
        let durable = Engine::builder(model.clone(), db.clone())
            .config(cfg())
            .durable(scratch.path())
            .fsync(FsyncPolicy::Never)
            .checkpoint_every(0)
            .build();
        let mut ids = Vec::new();
        for op in &ops {
            apply(&durable, op, &pool, &mut ids);
        }
        let logged = durable.durable_ops().expect("durable");
        drop(durable);

        // Map batch ordinals back to op indices: ops that reach the
        // engine claim ordinals in submission order, but an all-stale
        // `Remove` never calls the engine and so never logs.
        let mut logging_ops = Vec::new();
        let mut inserted = 0usize;
        for (i, op) in ops.iter().enumerate() {
            let logs = match op {
                Op::Insert(picks) => {
                    inserted += picks.len();
                    true
                }
                Op::Remove(ordinals) => ordinals.iter().any(|&o| o < inserted),
                Op::Explain(_) | Op::Stream(_) => true,
            };
            if logs {
                logging_ops.push(i);
            }
        }
        prop_assert_eq!(logged, logging_ops.len() as u64);

        let k = (crash_at as u64).min(logged);
        let kept_all_of_k = {
            let wal0 = wal_path(scratch.path(), 0);
            let (segments, valid, _) = read_wal(&wal0).expect("intact log");
            // Single-shard engine: every batch is one record in shard
            // 0's log. `partial` keeps batch k itself (a crash after
            // its append); otherwise the cut lands just before it.
            let cut = segments
                .iter()
                .position(|s| s.record.batch >= k + u64::from(partial))
                .map_or(valid, |i| segments[i].offset);
            truncate_wal(&wal0, cut).expect("crash the log");
            partial && segments.iter().any(|s| s.record.batch == k)
        };
        let survived = if kept_all_of_k { (k + 1).min(logged) } else { k };

        let recovered = Engine::builder(model.clone(), GraphDb::new())
            .config(cfg())
            .durable(scratch.path())
            .build();
        let report = recovered.recovery_report().expect("recovered");
        prop_assert_eq!(report.ops_replayed, survived);
        // Replaying the first `survived` *logged* batches reproduces
        // the op prefix up to (not including) logging op `survived`;
        // interleaved non-logging ops are engine no-ops either way.
        let prefix = logging_ops.get(survived as usize).copied().unwrap_or(ops.len());
        let reference = reference_after(&model, &db, &ops, prefix, &pool);
        assert_identical(&recovered, &reference, 5);

        // Historical reads at every epoch up to the head agree too.
        for e in 0..=recovered.head().0 {
            let at = Epoch(e);
            for l in 0..5u16 {
                prop_assert_eq!(
                    recovered.store().label_graphs_at(l, at),
                    reference.store().label_graphs_at(l, at),
                    "label {} at epoch {}", l, e
                );
            }
        }
    }
}
