//! Workspace-wiring smoke test: exercises the full crate DAG
//! (graph -> linalg -> gnn -> pattern/data -> core) end-to-end on a
//! tiny synthetic database. If the Cargo workspace is mis-wired —
//! a crate missing from the members list, a dependency edge dropped,
//! a shim losing an API — this is the test that fails first.

use gvex_core::{ApproxGvex, Config, StreamGvex};
use gvex_data::{synthetic, DataConfig};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};

/// Builds a small labeled database with a trained classifier, shared
/// by both smoke tests below.
fn tiny_trained() -> (gvex_graph::GraphDb, GcnModel, Vec<u32>) {
    // ~40-node graphs (size_scale 0.1) keep both smoke tests in the
    // seconds range; wiring bugs do not need big graphs to surface.
    let mut db = synthetic(DataConfig { size_scale: 0.1, ..DataConfig::new(12, 11) });
    let split = db.split(0.75, 0.0, 11);
    let feature_dim = db.graph(0).feature_dim();
    let classes = db.labels().len();
    let mut model = GcnModel::new(feature_dim, 16, classes, 2, 11);
    let mut trainer =
        AdamTrainer::new(&model, TrainConfig { epochs: 25, seed: 11, ..TrainConfig::default() });
    trainer.fit(&mut model, &db, &split.train);
    AdamTrainer::classify_all(&model, &mut db, &split.test);
    // Explain whichever label has the most predicted members so the
    // test does not depend on training reaching any specific accuracy.
    let label = db
        .labels()
        .into_iter()
        .max_by_key(|&l| db.label_group(l).len())
        .expect("database has labels");
    let mut ids = db.label_group(label);
    ids.truncate(4);
    assert!(!ids.is_empty(), "some graphs must carry the majority predicted label");
    (db, model, ids)
}

#[test]
fn approx_gvex_produces_a_nonempty_view() {
    let (db, model, ids) = tiny_trained();
    let label = db.predicted(ids[0]).unwrap();
    let view = ApproxGvex::new(Config::with_bounds(0, 6)).explain_label(&model, &db, label, &ids);
    assert_eq!(view.label, label);
    assert!(!view.subgraphs.is_empty(), "ApproxGVEX returned an empty lower tier");
    assert!(!view.patterns.is_empty(), "ApproxGVEX returned an empty higher tier");
    assert!(view.explainability.is_finite() && view.explainability > 0.0);
    for sub in &view.subgraphs {
        assert!(!sub.nodes.is_empty());
        assert!(sub.nodes.len() <= 6, "coverage upper bound u_l violated");
    }
}

#[test]
fn seeded_generation_is_deterministic_across_runs() {
    // Same seed, same database — byte for byte. This is what keeps
    // `cargo test -q` reproducible: every rand-driven generator in the
    // workspace threads an explicit u64 seed, never ambient entropy.
    let small = |seed| DataConfig { size_scale: 0.1, ..DataConfig::new(4, seed) };
    for kind in gvex_data::DatasetKind::all() {
        let a = kind.generate(small(123));
        let b = kind.generate(small(123));
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{} generation is not deterministic in its seed",
            kind.name()
        );
        let c = kind.generate(small(124));
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "{} generation ignores its seed",
            kind.name()
        );
    }
}

#[test]
fn stream_gvex_produces_a_nonempty_view() {
    let (db, model, ids) = tiny_trained();
    let label = db.predicted(ids[0]).unwrap();
    let view = StreamGvex::new(Config::with_bounds(0, 6)).explain_label(&model, &db, label, &ids);
    assert_eq!(view.label, label);
    assert!(!view.subgraphs.is_empty(), "StreamGVEX returned an empty lower tier");
    assert!(!view.patterns.is_empty(), "StreamGVEX returned an empty higher tier");
    assert!(view.explainability.is_finite());
}
