//! End-to-end shape tests: tiny versions of the paper's headline
//! experimental claims, run as assertions. These are the same code paths
//! as the `exp_*` binaries, shrunk to seconds.

use gvex_bench::{evaluate, label_of_interest, methods, prepare};
use gvex_core::{metrics, ApproxGvex, Config, StreamGvex};
use gvex_data::DatasetKind;

#[test]
fn fidelity_shape_on_mut() {
    // Fig 5/6 shape: on MUT, GVEX methods achieve positive Fidelity+ and
    // their Fidelity- stays below the worst baseline's.
    let ds = prepare(DatasetKind::Mutagenicity, 50, 1.0, 42);
    assert!(ds.test_accuracy >= 0.6, "classifier must learn: {}", ds.test_accuracy);
    let (label, ids) = label_of_interest(&ds);
    let ids: Vec<u32> = ids.into_iter().take(4).collect();
    let budget = 10;
    let evals: Vec<_> = methods(&Config::with_bounds(0, budget))
        .iter()
        .map(|m| evaluate(&ds, m.as_ref(), label, &ids, budget))
        .collect();
    let ag = evals.iter().find(|e| e.method == "AG").unwrap();
    assert!(ag.fidelity_plus.is_finite());
    let worst_fm = evals.iter().map(|e| e.fidelity_minus).fold(f64::NEG_INFINITY, f64::max);
    assert!(
        ag.fidelity_minus <= worst_fm + 1e-9,
        "AG Fidelity- ({}) should not be the worst ({worst_fm})",
        ag.fidelity_minus
    );
}

#[test]
fn gvex_runtime_competitive() {
    // Fig 9 shape: AG and SG are not slower than the slowest baseline.
    let ds = prepare(DatasetKind::Mutagenicity, 40, 1.0, 42);
    let (label, ids) = label_of_interest(&ds);
    let ids: Vec<u32> = ids.into_iter().take(3).collect();
    let budget = 8;
    let evals: Vec<_> = methods(&Config::with_bounds(0, budget))
        .iter()
        .map(|m| evaluate(&ds, m.as_ref(), label, &ids, budget))
        .collect();
    let slowest = evals.iter().map(|e| e.runtime_s).fold(0.0, f64::max);
    let ag = evals.iter().find(|e| e.method == "AG").unwrap();
    assert!(ag.runtime_s <= slowest + 1e-9);
}

#[test]
fn compression_shape() {
    // Fig 8(b) shape: the pattern tier compresses the subgraph tier
    // substantially (paper: >95%; we require a clear majority).
    let ds = prepare(DatasetKind::Mutagenicity, 50, 1.0, 42);
    let (label, ids) = label_of_interest(&ds);
    let ids: Vec<u32> = ids.into_iter().take(5).collect();
    let ag = ApproxGvex::new(Config::with_bounds(0, 10));
    let view = ag.explain_label(&ds.model, &ds.db, label, &ids);
    let c = metrics::compression(&view, &ds.db);
    assert!(c > 0.4, "patterns must compress the subgraphs: {c}");
}

#[test]
fn edge_loss_small_and_monotone_ish() {
    // Fig 8(c) shape: edge loss is small, and node coverage is full.
    let ds = prepare(DatasetKind::Mutagenicity, 50, 1.0, 42);
    let (label, ids) = label_of_interest(&ds);
    let ids: Vec<u32> = ids.into_iter().take(4).collect();
    let view =
        ApproxGvex::new(Config::with_bounds(0, 10)).explain_label(&ds.model, &ds.db, label, &ids);
    assert!(view.edge_loss < 0.5, "edge loss should stay small: {}", view.edge_loss);
}

#[test]
fn anytime_prefix_quality_reasonable() {
    // Fig 9(f) shape: processing more of the stream never hurts quality
    // by a large factor.
    let ds = prepare(DatasetKind::Pcqm4m, 60, 1.0, 42);
    let (label, ids) = label_of_interest(&ds);
    let ids: Vec<u32> = ids.into_iter().take(4).collect();
    let sg = StreamGvex::new(Config::with_bounds(0, 6));
    let half = sg.explain_label_fraction(&ds.model, &ds.db, label, &ids, 0.5);
    let full = sg.explain_label_fraction(&ds.model, &ds.db, label, &ids, 1.0);
    assert!(full.explainability >= 0.25 * half.explainability);
}

#[test]
fn portable_view_serializes_to_json_and_back() {
    use gvex_core::export;
    let ds = prepare(DatasetKind::Mutagenicity, 40, 1.0, 42);
    let (label, ids) = label_of_interest(&ds);
    let ids: Vec<u32> = ids.into_iter().take(3).collect();
    let ag = ApproxGvex::new(Config::with_bounds(0, 6));
    let view = ag.explain_label(&ds.model, &ds.db, label, &ids);
    let portable = export::to_portable(&view, &ds.db);
    let json = serde_json::to_string(&portable).expect("serialize");
    let back: export::PortableView = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, portable);
    // Stored patterns can be re-issued as queries.
    for pp in &back.patterns {
        let p = export::pattern_from_portable(pp);
        assert!(p.num_nodes() > 0);
    }
}

#[test]
fn portable_viewset_roundtrips_through_json() {
    use gvex_core::{export, Engine};
    let ds = prepare(DatasetKind::Mutagenicity, 40, 1.0, 42);
    let engine =
        Engine::builder(ds.model.clone(), ds.db.clone()).config(Config::with_bounds(0, 6)).build();
    engine.explain_all();
    let set = engine.view_set();
    assert!(!set.views.is_empty());
    let portable = export::viewset_to_portable(&set, &engine.db());
    let json = serde_json::to_string(&portable).expect("serialize view set");
    let back: export::PortableViewSet = serde_json::from_str(&json).expect("deserialize view set");
    assert_eq!(back, portable);
}

#[test]
fn query_engine_answers_the_papers_motivating_questions() {
    use gvex_core::{query, Engine, ViewQuery};
    use gvex_pattern::Pattern;
    let ds = prepare(DatasetKind::Mutagenicity, 60, 1.0, 42);
    let engine =
        Engine::builder(ds.model.clone(), ds.db.clone()).config(Config::with_bounds(0, 8)).build();
    // "Which toxicophores occur in mutagens?" — the N=O bond pattern.
    let nitro = Pattern::new(&[gvex_data::TYPE_N, gvex_data::TYPE_O], &[(0, 1, 1)]);
    let hits = engine.query(&ViewQuery::pattern(nitro.clone()));
    assert!(!hits.is_empty());
    assert_eq!(hits.count_for(1), hits.len(), "planted only in mutagens");
    // Planted only in mutagens: discriminativeness must be 1.0.
    assert_eq!(query::discriminativeness(engine.store(), &engine.db(), &nitro, 1), 1.0);
    // "Which nonmutagens contain it?" — none.
    assert!(engine.query(&ViewQuery::pattern(nitro.clone()).label(0)).is_empty());
    // The indexed answers agree with the direct-VF2 scan reference.
    let scanned = query::scan::graphs_containing(&ds.db, &nitro);
    assert_eq!(engine.store().hits(&nitro, &engine.db()), scanned);
}

#[test]
fn engine_end_to_end_explain_then_query() {
    use gvex_core::{query, Engine, ViewQuery};
    let ds = prepare(DatasetKind::Mutagenicity, 50, 1.0, 42);
    let (label, ids) = label_of_interest(&ds);
    let ids: Vec<u32> = ids.into_iter().take(4).collect();
    let engine =
        Engine::builder(ds.model.clone(), ds.db.clone()).config(Config::with_bounds(0, 8)).build();
    let vid = engine.explain_subset(label, &ids);
    let view = engine.view(vid).expect("view just generated");
    assert_eq!(view.subgraphs.len(), ids.len());
    assert!(!view.patterns.is_empty());
    // Every view pattern was indexed at insert time; pattern queries over
    // the view return a subset of its explained graphs.
    assert!(engine.store().indexed_patterns() >= view.patterns.len());
    let p = view.patterns[0].clone();
    let over_view = engine.query(&ViewQuery::pattern(p.clone()).in_views([vid]));
    let explained = engine.store().view_graph_ids(vid, &engine.db());
    assert!(over_view.graphs.iter().all(|id| explained.contains(id)));
    // The most discriminative pattern scores in [0, 1].
    let best = query::most_discriminative(engine.store(), &engine.db(), &view);
    assert!(best.is_some());
    assert!((0.0..=1.0).contains(&best.unwrap().1));
}

#[test]
fn degenerate_configurations_are_total() {
    // theta = 1 (nothing influenced), r = 0 (tight balls), gamma extremes.
    let ds = prepare(DatasetKind::Pcqm4m, 30, 1.0, 42);
    let (label, ids) = label_of_interest(&ds);
    let Some(&id) = ids.first() else { return };
    for (theta, r, gamma) in [(1.0, 0.0, 0.0), (0.0, 1.0, 1.0), (0.5, 0.5, 0.5)] {
        let mut cfg = Config::with_bounds(1, 5);
        cfg.theta = theta;
        cfg.r = r;
        cfg.gamma = gamma;
        let ag = ApproxGvex::new(cfg);
        let out = ag.explain_subgraph(&ds.model, ds.db.graph(id), id, label);
        let sub = out.expect("explanation exists under degenerate configs");
        assert!((1..=5).contains(&sub.len()));
        assert!(sub.score >= 0.0);
    }
}

#[test]
fn per_label_bounds_are_honored_independently() {
    let ds = prepare(DatasetKind::RedditBinary, 40, 1.0, 42);
    let cfg = Config::with_bounds(1, 3).bound_label(1, 2, 7);
    let ag = ApproxGvex::new(cfg);
    for label in [0u16, 1] {
        let ids: Vec<u32> = ds.db.label_group(label).into_iter().take(2).collect();
        if ids.is_empty() {
            continue;
        }
        let view = ag.explain_label(&ds.model, &ds.db, label, &ids);
        let (b, u) = if label == 1 { (2, 7) } else { (1, 3) };
        for s in &view.subgraphs {
            assert!(s.len() >= b && s.len() <= u, "label {label}: size {}", s.len());
        }
    }
}

#[test]
fn stream_prefix_zero_fraction_is_total() {
    let ds = prepare(DatasetKind::Pcqm4m, 30, 1.0, 42);
    let (label, ids) = label_of_interest(&ds);
    let Some(&id) = ids.first() else { return };
    let sg = StreamGvex::new(Config::with_bounds(0, 4));
    // fraction 0 processes ceil(0) = 0 arrivals; with b_l = 0 the result
    // is None (no nodes selected) rather than a panic.
    let out = sg.stream_graph(&ds.model, ds.db.graph(id), id, label, None, 0.0);
    assert!(out.is_none());
}
