//! Cross-crate integration tests: dataset simulators -> GNN training ->
//! GVEX explanation -> verification, exercising the public API the way
//! the examples and experiment harness do.

use gvex_core::metrics::{self, GraphExplanation};
use gvex_core::{verify, ApproxGvex, Config, ContextCache, Explainer, StreamGvex};
use gvex_data::{DataConfig, DatasetKind};
use gvex_gnn::{AdamTrainer, GcnModel, TrainConfig};
use gvex_graph::GraphDb;

fn train(kind: DatasetKind, n: usize, scale: f64, seed: u64) -> (GcnModel, GraphDb, Vec<u32>) {
    let mut db = kind.generate(DataConfig { num_graphs: n, seed, size_scale: scale });
    let split = db.split(0.8, 0.1, seed);
    let feat = db.graph(0).feature_dim();
    let classes = db.labels().len();
    let mut model = GcnModel::new(feat, 24, classes, 3, seed);
    let mut trainer = AdamTrainer::new(
        &model,
        TrainConfig { epochs: 120, lr: 5e-3, seed, ..TrainConfig::default() },
    );
    trainer.fit(&mut model, &db, &split.train);
    AdamTrainer::classify_all(&model, &mut db, &split.test);
    (model, db, split.test)
}

#[test]
fn mut_pipeline_trains_and_explains() {
    let (model, db, test) = train(DatasetKind::Mutagenicity, 60, 1.0, 1);
    let cfg = Config::with_bounds(1, 8);
    let algo = ApproxGvex::new(cfg.clone());
    let ids: Vec<u32> =
        test.iter().copied().filter(|&id| db.predicted(id) == Some(1)).take(4).collect();
    assert!(!ids.is_empty(), "test split must contain classified mutagens");
    let view = algo.explain_label(&model, &db, 1, &ids);
    assert_eq!(view.subgraphs.len(), ids.len());
    assert!(!view.patterns.is_empty());
    let v = verify::verify_view(&model, &db, &view, &cfg);
    assert!(v.c1_graph_view, "pattern tier must cover all subgraph nodes");
    assert!(v.c3_coverage, "coverage bounds must hold");
}

#[test]
fn approx_beats_random_on_fidelity() {
    let (model, db, test) = train(DatasetKind::Mutagenicity, 60, 1.0, 2);
    let ids: Vec<u32> =
        test.iter().copied().filter(|&id| db.predicted(id) == Some(1)).take(4).collect();
    if ids.is_empty() {
        return;
    }
    let algo = ApproxGvex::new(Config::with_bounds(0, 8));
    let make = |pick: &dyn Fn(&gvex_graph::Graph) -> Vec<u32>| -> Vec<GraphExplanation> {
        ids.iter()
            .map(|&id| {
                let g = db.graph(id);
                GraphExplanation { graph: g.clone(), label: 1, nodes: pick(g) }
            })
            .collect()
    };
    let gvex_expl =
        make(&|g| algo.explain_subgraph(&model, g, 0, 1).map(|s| s.nodes).unwrap_or_default());
    // "Random": the first 8 node ids (backbone carbons, label-agnostic).
    let naive_expl = make(&|g| (0..8.min(g.num_nodes() as u32)).collect());
    let f_gvex = metrics::fidelity_plus(&model, &gvex_expl);
    let f_naive = metrics::fidelity_plus(&model, &naive_expl);
    assert!(
        f_gvex >= f_naive - 0.05,
        "GVEX should not lose clearly to a naive baseline: {f_gvex} vs {f_naive}"
    );
}

#[test]
fn stream_and_approx_agree_on_coverage_invariants() {
    let (model, db, test) = train(DatasetKind::RedditBinary, 40, 1.0, 3);
    for label in [0u16, 1] {
        let ids: Vec<u32> =
            test.iter().copied().filter(|&id| db.predicted(id) == Some(label)).take(3).collect();
        if ids.is_empty() {
            continue;
        }
        let cfg = Config::with_bounds(1, 6);
        for view in [
            ApproxGvex::new(cfg.clone()).explain_label(&model, &db, label, &ids),
            StreamGvex::new(cfg.clone()).explain_label(&model, &db, label, &ids),
        ] {
            for s in &view.subgraphs {
                assert!(s.len() <= 6, "upper bound respected");
                assert!(!s.is_empty(), "lower bound respected");
            }
            let v = verify::verify_view(&model, &db, &view, &cfg);
            assert!(v.c1_graph_view, "node coverage by patterns");
        }
    }
}

#[test]
fn multi_class_views_enzymes() {
    let (model, db, test) = train(DatasetKind::Enzymes, 60, 1.0, 4);
    let algo = ApproxGvex::new(Config::with_bounds(0, 6));
    let mut seen = 0;
    for label in db.labels() {
        let ids: Vec<u32> =
            test.iter().copied().filter(|&id| db.predicted(id) == Some(label)).take(2).collect();
        if ids.is_empty() {
            continue;
        }
        let view = algo.explain_label(&model, &db, label, &ids);
        assert_eq!(view.label, label);
        assert!(view.explainability >= 0.0);
        seen += 1;
    }
    assert!(seen >= 2, "at least two label groups explained");
}

#[test]
fn explainer_trait_uniform_over_all_methods() {
    let (model, db, test) = train(DatasetKind::Mutagenicity, 40, 1.0, 5);
    let id = test[0];
    let g = db.graph(id);
    let label = db.predicted(id).unwrap();
    let cfg = Config::with_bounds(0, 6);
    let ctxs = ContextCache::new(cfg.clone());
    let ctx = ctxs.get(&model, g, id);
    let mut explainers: Vec<Box<dyn Explainer>> =
        vec![Box::new(ApproxGvex::new(cfg.clone())), Box::new(StreamGvex::new(cfg))];
    explainers.extend(gvex_baselines::all_baselines());
    for e in &explainers {
        let rich = e.explain_graph(&model, g, id, label, 6, &ctx);
        assert!(rich.len() <= 6, "{}", e.name());
        assert!(rich.nodes.iter().all(|&v| (v as usize) < g.num_nodes()), "{}", e.name());
        assert_eq!(rich.node_scores.len(), rich.nodes.len(), "{}", e.name());
        assert!(rich.flags.size_ok, "{}", e.name());
        // The batch path agrees with the single-graph path.
        let batch = e.explain_batch(&model, &db, label, &[id], 6, &ctxs);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].nodes, rich.nodes, "{}", e.name());
    }
    // One shared context was built for the graph, reused by all methods.
    assert_eq!(ctxs.len(), 1);
}

#[test]
fn empty_label_group_yields_empty_view() {
    let (model, db, _) = train(DatasetKind::Mutagenicity, 30, 1.0, 6);
    let algo = ApproxGvex::new(Config::with_bounds(0, 6));
    let view = algo.explain_label(&model, &db, 1, &[]);
    assert!(view.subgraphs.is_empty());
    assert!(view.patterns.is_empty());
    assert_eq!(view.explainability, 0.0);
}
