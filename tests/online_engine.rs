//! Online-engine integration tests: versioned snapshots, mutation under
//! readers, and the incremental-view-maintenance equivalence guarantee.

use gvex_core::{Config, Engine, Snapshot, StreamGvex, ViewId, ViewQuery};
use gvex_data::{mutagenicity, DataConfig, TYPE_N, TYPE_O};
use gvex_gnn::{AdamTrainer, GcnModel};
use gvex_graph::{ClassLabel, GraphDb, GraphId};
use gvex_pattern::Pattern;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A classified molecule-like database and its (untrained — predictions
/// only need to be deterministic, not accurate) classifier.
fn setup(n: usize, seed: u64) -> (GcnModel, GraphDb) {
    let mut db = mutagenicity(DataConfig::new(n, seed));
    let model = GcnModel::new(14, 16, 2, 2, seed);
    AdamTrainer::classify_all(&model, &mut db, &[]);
    (model, db)
}

/// The comparable core of a view: per explained graph, the selected node
/// set plus the C1–C3-relevant `consistent` / `counterfactual` flags.
fn view_shape(view: &gvex_core::ExplanationView) -> BTreeMap<GraphId, (Vec<u32>, bool, bool)> {
    view.subgraphs
        .iter()
        .map(|s| (s.graph_id, (s.nodes.clone(), s.consistent, s.counterfactual)))
        .collect()
}

#[test]
fn insert_snapshot_query_round_trip() {
    let (model, db) = setup(20, 11);
    let base = db.len();
    let pool = mutagenicity(DataConfig::new(3, 77));
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 5)).build();
    let labels = engine.db().labels();
    let vids: Vec<ViewId> = labels.iter().map(|&l| engine.stream(l, 1.0)).collect();

    // Pin, then mutate: the snapshot keeps the pre-mutation world.
    let snap = engine.snapshot();
    let (aid, g) = pool.iter().next().expect("pool graph");
    let (id, epoch) = engine.insert_graph(g.clone(), Some(pool.truth(aid)));
    // The batch committed at `epoch`; the maintained view's new version
    // lands at its own follow-up epoch, so the head is at or past it.
    assert!(engine.head() >= epoch);
    assert!(engine.db().contains(id));
    assert_eq!(engine.query(&ViewQuery::new()).len(), base + 1);
    assert_eq!(snap.query(&ViewQuery::new()).len(), base, "snapshot pinned before the insert");
    assert!(snap.epoch() < epoch);

    // The arrival was placed in its predicted label group and its view
    // gained the delta subgraph.
    let label = engine.db().predicted(id).expect("insert classifies the arrival");
    let vid = vids[labels.iter().position(|&l| l == label).unwrap()];
    let head_view = engine.store().get(vid).expect("maintained view");
    assert!(head_view.subgraphs.iter().any(|s| s.graph_id == id));
    // The snapshot resolves the *previous* version of the same handle.
    let old_view = snap.view(vid).expect("version live at the pinned epoch");
    assert!(old_view.subgraphs.iter().all(|s| s.graph_id != id));

    // Removal: head loses the graph, the pinned snapshot does not.
    let e2 = engine.remove_graphs(&[id]);
    assert!(e2 > epoch);
    assert!(!engine.db().contains(id));
    assert_eq!(engine.query(&ViewQuery::new()).len(), base);
    assert_eq!(snap.query(&ViewQuery::new()).len(), base);
    let head_view = engine.store().get(vid).expect("maintained view");
    assert!(head_view.subgraphs.iter().all(|s| s.graph_id != id));

    // Stale/foreign handles resolve to None instead of panicking.
    assert!(engine.store().get(ViewId(9999)).is_none());
    assert!(snap.view(ViewId(9999)).is_none());

    // Dropping the pin lets compaction reclaim the tombstoned state.
    drop(snap);
    let floor = engine.compact();
    assert_eq!(floor, engine.head());
    assert_eq!(engine.pinned_snapshots(), 0);
    assert!(engine.db().get_graph(id).is_none(), "payload reclaimed after unpin");
}

#[test]
fn concurrent_reader_on_old_snapshot_while_writer_advances() {
    let (model, db) = setup(16, 5);
    let pool = mutagenicity(DataConfig::new(6, 55));
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 5)).build();
    engine.explain_all();

    let snap: Snapshot = engine.snapshot();
    let frozen_len = snap.len();
    let nitro = Pattern::new(&[TYPE_N, TYPE_O], &[(0, 1, 1)]);
    let frozen_hits = snap.query(&ViewQuery::pattern(nitro.clone()));
    let frozen_views: Vec<_> = engine.store().latest_views().iter().map(|(vid, _)| *vid).collect();

    let reader = std::thread::spawn(move || {
        // Re-run the same reads many times while the writer mutates; a
        // pinned snapshot must answer identically every time.
        for _ in 0..40 {
            assert_eq!(snap.len(), frozen_len);
            assert_eq!(snap.query(&ViewQuery::pattern(nitro.clone())), frozen_hits);
            for &vid in &frozen_views {
                let view = snap.view(vid).expect("view live at pinned epoch");
                assert!(!view.subgraphs.is_empty() || view.patterns.is_empty());
            }
        }
        snap.epoch()
    });

    // Writer: interleave inserts and removals while the reader runs.
    let mut inserted = Vec::new();
    for (aid, g) in pool.iter() {
        let (id, _) = engine.insert_graph(g.clone(), Some(pool.truth(aid)));
        inserted.push(id);
        if inserted.len() % 2 == 0 {
            engine.remove_graphs(&[inserted[inserted.len() - 2]]);
        }
    }
    let pinned = reader.join().expect("reader thread");
    assert!(pinned < engine.head(), "writer advanced past the pinned epoch");
    engine.compact();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For random insert/remove sequences, incremental maintenance of a
    /// stream-generated view is **exactly** a full streaming recompute
    /// of the current label group at every epoch: same per-graph node
    /// sets, same C1/C2 (consistent/counterfactual) flags.
    #[test]
    fn incremental_maintenance_equals_full_recompute(seed in 0u64..64) {
        let (model, db) = setup(10, 3);
        let pool = mutagenicity(DataConfig::new(8, 1000 + seed));
        let engine = Engine::builder(model.clone(), db)
            .config(Config::with_bounds(0, 5))
            .staleness_bound(usize::MAX) // never fall back: test the pure delta path
            .build();
        let labels = engine.db().labels();
        let vids: Vec<ViewId> = labels.iter().map(|&l| engine.stream(l, 1.0)).collect();

        let mut rng = StdRng::seed_from_u64(seed);
        let pool_graphs: Vec<_> = pool.iter().map(|(id, g)| (g.clone(), pool.truth(id))).collect();
        let mut next_arrival = 0usize;
        let mut removable: Vec<GraphId> = engine.db().iter().map(|(id, _)| id).collect();

        for _ in 0..6 {
            let can_insert = next_arrival < pool_graphs.len();
            if (rng.gen_bool(0.65) && can_insert) || removable.is_empty() {
                if !can_insert { break; }
                let (g, truth) = pool_graphs[next_arrival].clone();
                next_arrival += 1;
                let (id, _) = engine.insert_graph(g, Some(truth));
                removable.push(id);
            } else {
                let victim = removable.swap_remove(rng.gen_range(0..removable.len()));
                engine.remove_graphs(&[victim]);
            }

            for (&label, &vid) in labels.iter().zip(&vids) {
                let maintained = engine.store().get(vid).expect("maintained view");
                let ids = engine.db().label_group(label);
                let full = StreamGvex::new(engine.config().clone()).explain_label(
                    &model,
                    &engine.db(),
                    label,
                    &ids,
                );
                prop_assert_eq!(
                    view_shape(&maintained),
                    view_shape(&full),
                    "label {} diverged after {} epochs",
                    label,
                    engine.head().0
                );
            }
        }
    }
}

#[test]
fn maintained_views_never_keep_phantom_patterns_after_removal() {
    let (model, db) = setup(12, 23);
    let pool = mutagenicity(DataConfig::new(6, 61));
    let engine = Engine::builder(model, db)
        .config(Config::with_bounds(0, 5))
        .staleness_bound(usize::MAX)
        .build();
    let labels = engine.db().labels();
    let vids: Vec<ViewId> = labels.iter().map(|&l| engine.stream(l, 1.0)).collect();
    let mut inserted = Vec::new();
    for (aid, g) in pool.iter() {
        let (id, _) = engine.insert_graph(g.clone(), Some(pool.truth(aid)));
        inserted.push(id);
    }
    engine.remove_graphs(&inserted);
    for &vid in &vids {
        let view = engine.store().get(vid).expect("maintained view");
        let induced: Vec<_> = view.subgraphs.iter().map(|s| s.induced(&engine.db()).0).collect();
        for p in &view.patterns {
            assert!(
                induced.iter().any(|g| gvex_pattern::vf2::contains(p, g)),
                "pattern with no supporting live subgraph survived removal"
            );
        }
    }
}

#[test]
fn head_queries_over_unmaintained_views_skip_removed_graphs() {
    let (model, db) = setup(14, 29);
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 5)).build();
    let label = engine.db().labels()[0];
    let ids: Vec<GraphId> = engine.db().label_group(label).into_iter().take(4).collect();
    assert!(ids.len() >= 2, "need a few graphs in the group");
    // Subset views are not registered for maintenance.
    let vid = engine.stream_subset(label, &ids, 1.0);
    let explained_before = engine.query(&ViewQuery::new().in_views([vid])).graphs;
    let victim = explained_before[0];
    engine.remove_graphs(&[victim]);
    let explained_after = engine.query(&ViewQuery::new().in_views([vid])).graphs;
    assert!(
        !explained_after.contains(&victim),
        "head query over a stale view version must drop tombstoned graphs"
    );
    // Every surviving id is dereferenceable at the head.
    for id in explained_after {
        assert!(engine.db().get_graph(id).is_some());
    }
}

#[test]
fn staleness_bound_triggers_full_recompute() {
    let (model, db) = setup(12, 9);
    let pool = mutagenicity(DataConfig::new(5, 21));
    let engine =
        Engine::builder(model, db).config(Config::with_bounds(0, 5)).staleness_bound(2).build();
    let labels = engine.db().labels();
    for &l in &labels {
        engine.stream(l, 1.0);
    }
    let mut seen_reset = false;
    for (aid, g) in pool.iter() {
        let (id, _) = engine.insert_graph(g.clone(), Some(pool.truth(aid)));
        let label = engine.db().predicted(id).expect("classified");
        let s = engine.staleness(label).expect("registered label view");
        assert!(s <= 2, "staleness bound respected, got {s}");
        seen_reset |= s == 0;
    }
    assert!(seen_reset, "at least one mutation crossed the bound and recomputed fully");
}

#[test]
fn bounded_context_cache_evicts_and_online_insert_still_works() {
    let (model, db) = setup(14, 13);
    let pool = mutagenicity(DataConfig::new(4, 31));
    let cap = 6usize;
    let engine =
        Engine::builder(model, db).config(Config::with_bounds(0, 5)).context_capacity(cap).build();
    engine.explain_all();
    assert!(engine.contexts().len() <= cap, "LRU cap enforced during explain_all");
    for (aid, g) in pool.iter() {
        engine.insert_graph(g.clone(), Some(pool.truth(aid)));
        assert!(engine.contexts().len() <= cap);
    }
    // Removal also drops the victims' cached contexts.
    let live: Vec<GraphId> = engine.db().iter().map(|(id, _)| id).collect();
    let victims: Vec<GraphId> = live.into_iter().take(2).collect();
    engine.remove_graphs(&victims);
    assert!(engine.contexts().len() <= cap);
}

#[test]
fn batch_insert_commits_one_epoch_and_groups_labels() {
    let (model, db) = setup(12, 17);
    let pool = mutagenicity(DataConfig::new(6, 41));
    let engine = Engine::builder(model, db).config(Config::with_bounds(0, 5)).build();
    let labels = engine.db().labels();
    let vids: Vec<ViewId> = labels.iter().map(|&l| engine.stream(l, 1.0)).collect();
    let versions_before: Vec<usize> =
        vids.iter().map(|&v| engine.store().version_count(v)).collect();

    let before = engine.head();
    let batch: Vec<(gvex_graph::Graph, Option<ClassLabel>)> =
        pool.iter().map(|(id, g)| (g.clone(), Some(pool.truth(id)))).collect();
    let n = batch.len();
    let (ids, epoch) = engine.insert_graphs(batch);
    assert_eq!(ids.len(), n);
    assert_eq!(epoch, before.next(), "whole batch commits at one epoch");
    // Each affected label view gained at most one version for the batch.
    for (i, &vid) in vids.iter().enumerate() {
        assert!(engine.store().version_count(vid) <= versions_before[i] + 1);
    }
}
