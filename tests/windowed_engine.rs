//! Windowed-retention integration tests: a windowed engine must be
//! observationally identical to an unwindowed engine that explicitly
//! removes exactly the graphs the window expired — same head epochs,
//! same query results, same view contents — at every step of random
//! arrival streams; pinned snapshots must keep reading their frontier
//! (expired graphs included) byte-identically; and durable recovery
//! must re-derive the same expiry sweeps from the logged inserts alone,
//! preserving the window floor.

use gvex_core::{Config, Engine, FsyncPolicy, RetentionPolicy, ViewQuery, Window};
use gvex_data::malnet_scale;
use gvex_gnn::GcnModel;
use gvex_graph::{ClassLabel, Graph, GraphDb, GraphId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch directory under the system temp dir, unique per
/// test invocation (pid + counter), removed by [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gvex-window-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Untrained model — determinism is all these tests need, and both
/// sides of every comparison clone the same instance.
fn model_for(db: &GraphDb) -> GcnModel {
    let feat = db.iter().next().map(|(_, g)| g.feature_dim()).unwrap_or(1);
    GcnModel::new(feat, 8, 5, 2, 7)
}

fn cfg() -> Config {
    Config::with_bounds(0, 4)
}

fn last_graphs(n: usize) -> RetentionPolicy {
    RetentionPolicy::Window(Window::last_graphs(n))
}

/// Canonical value of one explanation view (field-by-field, with float
/// bits — the windowed engine must reproduce views exactly).
type ViewCanon = (
    ClassLabel,
    Vec<(GraphId, Vec<u32>, bool, bool, u64)>,
    Vec<(Vec<u16>, Vec<(u32, u32, u16)>)>,
    u64,
    u64,
);

fn canon_view(v: &gvex_core::ExplanationView) -> ViewCanon {
    let subs = v
        .subgraphs
        .iter()
        .map(|s| (s.graph_id, s.nodes.clone(), s.consistent, s.counterfactual, s.score.to_bits()))
        .collect();
    let pats = v
        .patterns
        .iter()
        .map(|p| {
            let types: Vec<u16> = (0..p.num_nodes() as u32).map(|n| p.node_type(n)).collect();
            let mut edges: Vec<(u32, u32, u16)> = p.edges().collect();
            edges.sort_unstable();
            (types, edges)
        })
        .collect();
    (v.label, subs, pats, v.explainability.to_bits(), v.edge_loss.to_bits())
}

/// Canonical value of one graph payload: types, features (bit-exact),
/// and the sorted edge list.
type GraphCanon = (Vec<u16>, Vec<u64>, Vec<(u32, u32, u16)>);

fn canon_graph(g: &Graph) -> GraphCanon {
    let types: Vec<u16> = (0..g.num_nodes() as u32).map(|v| g.node_type(v)).collect();
    let feats: Vec<u64> = g.features().data().iter().map(|f| f.to_bits()).collect();
    let mut edges: Vec<(u32, u32, u16)> = g.edges().collect();
    edges.sort_unstable();
    (types, feats, edges)
}

/// Asserts `a` and `b` answer identically: head epoch, full result
/// set, per-label counts, per-label queries, and every current view.
fn assert_identical(a: &Engine, b: &Engine, labels: ClassLabel) {
    assert_eq!(a.head(), b.head(), "head epoch");
    let (ra, rb) = (a.query(&ViewQuery::new()), b.query(&ViewQuery::new()));
    assert_eq!(ra.graphs, rb.graphs, "live graph ids");
    assert_eq!(ra.per_label, rb.per_label, "per-label counts");
    for l in 0..labels {
        assert_eq!(
            a.query(&ViewQuery::new().label(l)).graphs,
            b.query(&ViewQuery::new().label(l)).graphs,
            "label {l} result"
        );
    }
    let (va, vb) = (a.view_set(), b.view_set());
    let ca: Vec<ViewCanon> = va.views.iter().map(canon_view).collect();
    let cb: Vec<ViewCanon> = vb.views.iter().map(canon_view).collect();
    assert_eq!(ca, cb, "current view versions");
}

/// Drives one insert batch into the windowed engine and mirrors it on
/// the unwindowed reference: same arrivals, then an explicit
/// `remove_graphs` of exactly the ids the window expired (ascending id
/// order — the sweep's own deterministic order). Sequential ids are
/// reproducible across engines, so set difference identifies them.
fn mirror_batch(windowed: &Engine, reference: &Engine, batch: &[Graph]) {
    let arrivals: Vec<_> = batch.iter().map(|g| (g.clone(), None)).collect();
    windowed.insert_graphs(arrivals.clone());
    reference.insert_graphs(arrivals);
    let kept = windowed.query(&ViewQuery::new()).graphs;
    let mut victims: Vec<GraphId> = reference
        .query(&ViewQuery::new())
        .graphs
        .into_iter()
        .filter(|id| !kept.contains(id))
        .collect();
    victims.sort_unstable();
    if !victims.is_empty() {
        reference.remove_graphs(&victims);
    }
}

#[test]
fn window_gauges_track_the_stream() {
    let db = malnet_scale(6, 11);
    let model = model_for(&db);
    let pool: Vec<Graph> = malnet_scale(12, 50).iter().map(|(_, g)| g.clone()).collect();
    let engine =
        Engine::builder(model, GraphDb::new()).config(cfg()).retention(last_graphs(3)).build();
    assert_eq!(engine.retention_policy(), last_graphs(3));

    let empty = engine.window_stats();
    assert_eq!(empty.live_graphs, 0);
    assert_eq!(empty.floor, engine.head(), "empty window: the floor is the head");

    for chunk in pool.chunks(2) {
        engine.insert_graphs(chunk.iter().map(|g| (g.clone(), None)).collect());
    }
    let stats = engine.window_stats();
    assert_eq!(stats.live_graphs, 3, "window keeps exactly the newest 3");
    assert_eq!(stats.expired_total, pool.len() as u64 - 3, "everything else expired");
    assert!(stats.live_bytes > 0);
    assert!(stats.floor < engine.head(), "live graphs exist above the floor");
    assert_eq!(engine.query(&ViewQuery::new()).graphs.len(), 3);
}

#[test]
fn epoch_window_expires_by_age_not_count() {
    let pool: Vec<Graph> = malnet_scale(8, 51).iter().map(|(_, g)| g.clone()).collect();
    let model = model_for(&malnet_scale(4, 1));
    let engine = Engine::builder(model, GraphDb::new())
        .config(cfg())
        .retention(RetentionPolicy::Window(Window::last_epochs(1_000_000)))
        .build();
    // A huge epoch window expires nothing on a short stream.
    for chunk in pool.chunks(3) {
        engine.insert_graphs(chunk.iter().map(|g| (g.clone(), None)).collect());
    }
    let stats = engine.window_stats();
    assert_eq!(stats.live_graphs, pool.len() as u64, "wide window keeps everything");
    assert_eq!(stats.expired_total, 0);
}

/// The pin-floor clamp: expiry tombstones graphs the moment they fall
/// off the window, but compaction never frees state a pinned snapshot
/// still observes — the snapshot keeps reading every payload of its
/// frontier, byte-identically, while the head has already moved on.
#[test]
fn pinned_snapshot_reads_its_frontier_across_expiry() {
    let pool: Vec<Graph> = malnet_scale(10, 77).iter().map(|(_, g)| g.clone()).collect();
    let model = model_for(&malnet_scale(4, 2));
    let engine =
        Engine::builder(model, GraphDb::new()).config(cfg()).retention(last_graphs(2)).build();

    // The opening batch itself sweeps: four arrivals, window of two —
    // the pin below observes only the two survivors.
    engine.insert_graphs(pool[..4].iter().map(|g| (g.clone(), None)).collect());
    let kept = engine.query(&ViewQuery::new()).graphs;
    assert_eq!(kept.len(), 2, "the opening batch already swept down to the window");
    let pinned = engine.snapshot();
    let frontier: Vec<GraphCanon> = kept
        .iter()
        .map(|&id| canon_graph(pinned.db().get_graph(id).expect("pinned read")))
        .collect();

    // Stream far past the window: every pinned graph expires.
    for chunk in pool[4..].chunks(2) {
        engine.insert_graphs(chunk.iter().map(|g| (g.clone(), None)).collect());
    }
    let head_live = engine.query(&ViewQuery::new()).graphs;
    for id in &kept {
        assert!(!head_live.contains(id), "graph {id} fell off the window at the head");
    }
    assert_eq!(engine.window_stats().live_graphs, 2);

    // The pin still answers its epoch: both original survivors, with
    // byte-identical payloads.
    let at_pin = pinned.query(&ViewQuery::new()).graphs;
    for id in &kept {
        assert!(at_pin.contains(id), "graph {id} visible at the pinned epoch");
    }
    for (id, want) in kept.iter().zip(&frontier) {
        let got = canon_graph(pinned.db().get_graph(*id).expect("pinned payload survives"));
        assert_eq!(&got, want, "graph {id} payload at the pin");
    }

    // Dropping the pin releases the retained state on the next sweep.
    drop(pinned);
    engine.compact();
    for id in &kept {
        assert!(engine.db().get_graph(*id).is_none(), "graph {id} freed after the pin dropped");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random arrival streams, a windowed engine is observationally
    /// identical — heads, queries, per-label results, and bit-exact
    /// view contents — to an unwindowed engine that explicitly removes
    /// exactly what the window expired, checked after every batch.
    #[test]
    fn windowed_equals_unwindowed_restricted_to_the_window(
        k in 1usize..6,
        batches in 2usize..6,
        seed in 1u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool: Vec<Graph> =
            malnet_scale(20, seed).iter().map(|(_, g)| g.clone()).collect();
        let model = model_for(&malnet_scale(4, seed));
        let windowed = Engine::builder(model.clone(), GraphDb::new())
            .config(cfg())
            .retention(last_graphs(k))
            .build();
        let reference =
            Engine::builder(model, GraphDb::new()).config(cfg()).build();

        for _ in 0..batches {
            let n = rng.gen_range(1..=3usize);
            let batch: Vec<Graph> =
                (0..n).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect();
            mirror_batch(&windowed, &reference, &batch);
            // Interleave reads: views materialize on both sides from
            // the same (windowed) live set.
            if rng.gen_range(0..2u8) == 1 {
                let l = rng.gen_range(0..5u16);
                windowed.explain_label(l);
                reference.explain_label(l);
            }
            assert_identical(&windowed, &reference, 5);
            prop_assert!(
                windowed.query(&ViewQuery::new()).graphs.len() <= k,
                "window bound holds"
            );
        }
    }

    /// Durable windowed engines recover by re-deriving the expiry
    /// sweeps from the logged inserts alone (nothing about expiry is
    /// logged): after a drop-and-rebuild, the engine equals a
    /// never-crashed windowed twin — same live set, same views, same
    /// window floor.
    #[test]
    fn recovery_re_derives_the_window(
        k in 1usize..5,
        checkpoint_at in 0usize..4,
        seed in 1u64..500,
    ) {
        let scratch = Scratch::new("prop");
        let mut rng = StdRng::seed_from_u64(seed);
        let pool: Vec<Graph> =
            malnet_scale(16, seed).iter().map(|(_, g)| g.clone()).collect();
        let model = model_for(&malnet_scale(4, seed));
        let batches: Vec<Vec<Graph>> = (0..4)
            .map(|_| {
                let n = rng.gen_range(1..=3usize);
                (0..n).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect()
            })
            .collect();

        let durable = Engine::builder(model.clone(), GraphDb::new())
            .config(cfg())
            .retention(last_graphs(k))
            .durable(scratch.path())
            .fsync(FsyncPolicy::Never)
            .build();
        let twin = Engine::builder(model.clone(), GraphDb::new())
            .config(cfg())
            .retention(last_graphs(k))
            .build();
        for (i, batch) in batches.iter().enumerate() {
            let arrivals: Vec<_> = batch.iter().map(|g| (g.clone(), None)).collect();
            durable.insert_graphs(arrivals.clone());
            twin.insert_graphs(arrivals);
            if i == checkpoint_at {
                durable.checkpoint().expect("mid-stream checkpoint");
            }
        }
        let stats_before = durable.window_stats();
        drop(durable);

        let recovered = Engine::builder(model, GraphDb::new())
            .config(cfg())
            .retention(last_graphs(k))
            .durable(scratch.path())
            .build();
        recovered.recovery_report().expect("directory was recovered");
        assert_identical(&recovered, &twin, 5);
        let stats_after = recovered.window_stats();
        prop_assert_eq!(stats_after.floor, stats_before.floor, "window floor survives");
        prop_assert_eq!(stats_after.live_graphs, stats_before.live_graphs);
        // `live_bytes` is deliberately not compared: the gauge reports
        // each payload at its current representation's cost (heap
        // estimate when resident, serialized length when
        // extent-backed), and recovery rebuilds slots extent-backed.
    }
}
