//! Paged-storage-tier integration tests: a memory-budgeted engine must
//! be **observationally identical** to the in-memory engine — same ids,
//! epochs, query results, views, and historical reads — while keeping
//! resident payload bytes bounded, spilling cold payloads to extents
//! and faulting them back transparently. Also covers the interaction
//! corners: pin-aware compaction freeing tombstones no pin can
//! observe, lazy (O(metadata)) recovery of a durable
//! directory, and a pinned snapshot faulting through its own pager
//! handle after the engine is gone.

use gvex_core::{Config, Engine, ViewQuery};
use gvex_data::malnet_scale;
use gvex_gnn::GcnModel;
use gvex_graph::{ClassLabel, Epoch, Graph, GraphDb, GraphId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch directory under the system temp dir, unique per
/// test invocation (pid + counter), removed by [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("gvex-paged-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Untrained model — determinism is all the paging layer needs, and
/// both sides of every comparison clone the same instance.
fn model_for(db: &GraphDb) -> GcnModel {
    let feat = db.iter().next().map(|(_, g)| g.feature_dim()).unwrap_or(1);
    GcnModel::new(feat, 8, 5, 2, 7)
}

fn cfg() -> Config {
    Config::with_bounds(0, 4)
}

/// Total payload bytes of a database (the "in-memory footprint" the
/// budget is set against).
fn full_bytes(db: &GraphDb) -> u64 {
    db.iter().map(|(_, g)| g.approx_bytes() as u64).sum()
}

/// One scripted engine op, replayable against any engine.
#[derive(Debug, Clone)]
enum Op {
    /// Insert these pool graphs as one batch.
    Insert(Vec<usize>),
    /// Remove the ids of these arrival ordinals (stale ones included).
    Remove(Vec<usize>),
    Explain(ClassLabel),
    Stream(ClassLabel),
}

/// Applies `op`, extending `ids` with any new arrivals.
fn apply(engine: &Engine, op: &Op, pool: &[Graph], ids: &mut Vec<GraphId>) {
    match op {
        Op::Insert(picks) => {
            let batch: Vec<_> = picks.iter().map(|&i| (pool[i].clone(), None)).collect();
            ids.extend(engine.insert_graphs(batch).0);
        }
        Op::Remove(ordinals) => {
            let victims: Vec<GraphId> =
                ordinals.iter().filter_map(|&o| ids.get(o).copied()).collect();
            if !victims.is_empty() {
                engine.remove_graphs(&victims);
            }
        }
        Op::Explain(l) => {
            engine.explain_label(*l);
        }
        Op::Stream(l) => {
            engine.stream(*l, 0.8);
        }
    }
}

/// Canonical value of one explanation view (field-by-field, with float
/// bits — the paged engine must reproduce views exactly).
type ViewCanon = (
    ClassLabel,
    Vec<(GraphId, Vec<u32>, bool, bool, u64)>,
    Vec<(Vec<u16>, Vec<(u32, u32, u16)>)>,
    u64,
    u64,
);

fn canon_view(v: &gvex_core::ExplanationView) -> ViewCanon {
    let subs = v
        .subgraphs
        .iter()
        .map(|s| (s.graph_id, s.nodes.clone(), s.consistent, s.counterfactual, s.score.to_bits()))
        .collect();
    let pats = v
        .patterns
        .iter()
        .map(|p| {
            let types: Vec<u16> = (0..p.num_nodes() as u32).map(|n| p.node_type(n)).collect();
            let mut edges: Vec<(u32, u32, u16)> = p.edges().collect();
            edges.sort_unstable();
            (types, edges)
        })
        .collect();
    (v.label, subs, pats, v.explainability.to_bits(), v.edge_loss.to_bits())
}

/// Asserts `a` and `b` answer identically: head epoch, full result
/// set, per-label counts, and every current view.
fn assert_identical(a: &Engine, b: &Engine, labels: ClassLabel) {
    assert_eq!(a.head(), b.head(), "head epoch");
    let (ra, rb) = (a.query(&ViewQuery::new()), b.query(&ViewQuery::new()));
    assert_eq!(ra.graphs, rb.graphs, "live graph ids");
    assert_eq!(ra.per_label, rb.per_label, "per-label counts");
    for l in 0..labels {
        assert_eq!(
            a.query(&ViewQuery::new().label(l)).graphs,
            b.query(&ViewQuery::new().label(l)).graphs,
            "label {l} result"
        );
    }
    let (va, vb) = (a.view_set(), b.view_set());
    let ca: Vec<ViewCanon> = va.views.iter().map(canon_view).collect();
    let cb: Vec<ViewCanon> = vb.views.iter().map(canon_view).collect();
    assert_eq!(ca, cb, "current view versions");
}

/// A tight budget keeps residency bounded (entry-point rebalance), and
/// faulted-back payloads are byte-identical to the in-memory engine's.
#[test]
fn budget_bounds_residency_and_faults_round_trip() {
    // Build each engine from its own deterministic copy: a shared
    // `db.clone()` would keep every payload Arc alive in the test and
    // mark it pinned (unevictable) forever.
    let full = full_bytes(&malnet_scale(60, 11));
    let model = model_for(&malnet_scale(60, 11));
    let budget = full / 8;
    let paged = Engine::builder(model.clone(), malnet_scale(60, 11))
        .config(cfg())
        .memory_budget(budget)
        .build();
    let reference = Engine::builder(model, malnet_scale(60, 11)).config(cfg()).build();
    assert!(paged.pager_stats().is_some() && reference.pager_stats().is_none());

    // A label query touches only postings: its entry-point rebalance
    // evicts down to the budget and the query itself faults nothing.
    let (rp, rr) = (paged.query(&ViewQuery::new()), reference.query(&ViewQuery::new()));
    assert_eq!(rp.graphs, rr.graphs, "unconstrained result set");
    let s = paged.pager_stats().expect("budgeted engine pages");
    assert!(s.evictions > 0, "over-budget seed was evicted");
    assert!(
        s.resident_bytes <= budget,
        "rebalance enforces the budget: {} resident > {budget}",
        s.resident_bytes
    );
    assert!(s.resident_bytes < full, "paging beat the in-memory footprint");

    // Fault everything back through payload reads; content matches.
    for &id in &rr.graphs {
        let a = paged.db().graph_arc(id).expect("faults in");
        let b = reference.db().graph_arc(id).expect("resident");
        assert_eq!(a.num_nodes(), b.num_nodes(), "graph {id} node count");
        assert_eq!(a.num_edges(), b.num_edges(), "graph {id} edge count");
    }
    let s = paged.pager_stats().expect("budgeted engine pages");
    assert!(s.faults > 0, "cold payloads faulted from the extents");
}

/// An old pin no longer makes removed payloads unfreeable: compaction
/// is pin-*aware*, so graphs born after the pin's epoch — which the
/// pinned snapshot can never observe — are freed outright when
/// removed, releasing their memory with no spill traffic at all. (A
/// pin that *does* observe a tombstone keeps it faultable; that branch
/// is unit-tested in `gvex_graph` where the pager can be mocked.)
#[test]
fn compact_frees_tombstones_no_pin_can_observe() {
    let model = model_for(&malnet_scale(20, 9));
    let paged = Engine::builder(model, malnet_scale(20, 9))
        .config(cfg())
        .memory_budget(u64::MAX / 2) // never over budget: isolate the compact path
        .build();
    let pool: Vec<Graph> = malnet_scale(6, 77).iter().map(|(_, g)| g.clone()).collect();

    // Pin *before* the arrivals: the pin epoch predates their birth, so
    // the snapshot can never observe them — their tombstones are
    // freeable even though the conservative floor (oldest pin) is below
    // their death epoch.
    let pin = paged.snapshot();
    let live_at_pin = pin.query(&ViewQuery::new()).len();
    let (ids, _) = paged.insert_graphs(pool.iter().map(|g| (g.clone(), None)).collect());
    let before = paged.pager_stats().expect("paged");
    paged.remove_graphs(&ids); // runs pin-aware compact under the old pin
    let after = paged.pager_stats().expect("paged");
    assert_eq!(after.spilled_bytes, before.spilled_bytes, "freed outright: no spill needed");
    assert!(after.resident_bytes < before.resident_bytes, "their memory was released");
    assert!(
        ids.iter().all(|&id| paged.db().graph_arc(id).is_none()),
        "payloads are gone, not paged"
    );

    // Head reads no longer see them; the old pin is untouched.
    let head = paged.query(&ViewQuery::new());
    assert!(ids.iter().all(|id| !head.graphs.contains(id)), "removed from the head");
    assert_eq!(pin.query(&ViewQuery::new()).len(), live_at_pin, "pin unaffected");
}

/// Recovery over a checkpointed directory opens in O(metadata): zero
/// faults, zero resident payload bytes, label queries still answered
/// from postings — and the first payload access faults on demand.
#[test]
fn recovery_is_lazy_and_faults_on_demand() {
    let scratch = Scratch::new("lazy");
    let model = model_for(&malnet_scale(40, 5));
    {
        let e = Engine::builder(model.clone(), malnet_scale(40, 5))
            .config(cfg())
            .durable(scratch.path())
            .build();
        // The build's initial checkpoint captured the seed; no further
        // ops, so the logs are empty and recovery replays nothing.
        drop(e);
    }
    let recovered = Engine::builder(model, GraphDb::new())
        .config(cfg())
        .durable(scratch.path())
        .memory_budget(1 << 20)
        .build();
    recovered.recovery_report().expect("directory was recovered");
    let s0 = recovered.pager_stats().expect("durable engines page");
    assert_eq!(s0.faults, 0, "recovery read no payloads");
    assert_eq!(s0.resident_bytes, 0, "every slot restored cold");

    // Metadata-backed reads stay fault-free.
    let r = recovered.query(&ViewQuery::new());
    assert_eq!(r.len(), 40, "all live graphs visible from slot metadata");
    assert_eq!(recovered.pager_stats().expect("paged").faults, 0, "postings need no payloads");

    // First payload access faults exactly on demand.
    let g = recovered.db().graph_arc(r.graphs[0]).expect("faulted in");
    assert!(g.num_nodes() > 0);
    let s1 = recovered.pager_stats().expect("paged");
    assert!(s1.faults >= 1 && s1.resident_bytes > 0, "payload faulted and is now resident");
}

/// A pinned snapshot carries its own pager handle: payloads evicted
/// before the pin keep faulting through the snapshot's clone even
/// after the engine itself is dropped.
#[test]
fn snapshot_faults_through_its_own_pager_after_engine_drop() {
    let model = model_for(&malnet_scale(20, 3));
    let paged = Engine::builder(model, malnet_scale(20, 3))
        .config(cfg())
        .memory_budget(1) // evict everything evictable at every entry
        .build();
    let ids = paged.query(&ViewQuery::new()).graphs; // entry rebalance evicts the seed
    assert!(paged.pager_stats().expect("paged").evictions > 0);
    let snap = paged.snapshot();
    drop(paged);
    for &id in &ids {
        let g = snap.db().get_graph(id).expect("snapshot faults via its shared page cache");
        assert!(g.num_nodes() > 0);
    }
}

/// Samples a random op script (the shim's `proptest!` only supports
/// numeric-range strategies, so ops derive from a seeded RNG).
fn random_ops(rng: &mut StdRng) -> Vec<Op> {
    let n = rng.gen_range(2..7usize);
    (0..n)
        .map(|_| match rng.gen_range(0..7u8) {
            0..=2 => {
                Op::Insert((0..rng.gen_range(1..=3usize)).map(|_| rng.gen_range(0..10)).collect())
            }
            3..=4 => {
                Op::Remove((0..rng.gen_range(1..=2usize)).map(|_| rng.gen_range(0..12)).collect())
            }
            5 => Op::Explain(rng.gen_range(0..5u16)),
            _ => Op::Stream(rng.gen_range(0..5u16)),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For a random insert/remove/explain/stream script with a snapshot
    /// pinned at a random point, a tiny-budget paged engine must answer
    /// every present-time query, every historical `at(epoch)` read, and
    /// every pinned-snapshot read identically to the in-memory engine.
    #[test]
    fn paged_engine_is_observationally_identical(
        seed in 1u64..400,
        budget_div in 2u64..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = random_ops(&mut rng);
        let snap_after = rng.gen_range(0..ops.len());
        let pool: Vec<Graph> =
            malnet_scale(10, seed + 1000).iter().map(|(_, g)| g.clone()).collect();
        // Independent deterministic copies: sharing one `db` would keep
        // payload Arcs alive in the test and block all eviction.
        let full = full_bytes(&malnet_scale(12, seed));
        let model = model_for(&malnet_scale(12, seed));
        let budget = (full / budget_div).max(1);
        let paged = Engine::builder(model.clone(), malnet_scale(12, seed))
            .config(cfg())
            .memory_budget(budget)
            .build();
        let reference = Engine::builder(model, malnet_scale(12, seed)).config(cfg()).build();

        let (mut ids_p, mut ids_r) = (Vec::new(), Vec::new());
        let mut pins = None;
        for (i, op) in ops.iter().enumerate() {
            apply(&paged, op, &pool, &mut ids_p);
            apply(&reference, op, &pool, &mut ids_r);
            if i == snap_after {
                pins = Some((paged.snapshot(), reference.snapshot()));
            }
        }
        prop_assert_eq!(&ids_p, &ids_r, "sequential id allocation matches");
        assert_identical(&paged, &reference, 5);

        // Historical reads at every epoch up to the head agree.
        for e in 0..=paged.head().0 {
            let at = Epoch(e);
            for l in 0..5u16 {
                prop_assert_eq!(
                    paged.store().label_graphs_at(l, at),
                    reference.store().label_graphs_at(l, at),
                    "label {} at epoch {}", l, e
                );
            }
        }

        // The mid-script pins answer identically too (the paged pin
        // holds payloads resident; the floor respects it by design).
        if let Some((sp, sr)) = pins {
            prop_assert_eq!(sp.epoch(), sr.epoch(), "pins landed on the same epoch");
            prop_assert_eq!(
                sp.query(&ViewQuery::new()).graphs,
                sr.query(&ViewQuery::new()).graphs,
                "pinned unconstrained reads"
            );
            for l in 0..5u16 {
                prop_assert_eq!(
                    sp.query(&ViewQuery::new().label(l)).graphs,
                    sr.query(&ViewQuery::new().label(l)).graphs,
                    "pinned label {} reads", l
                );
            }
        }
    }
}
